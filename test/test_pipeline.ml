(* The out-of-order pipeline: architectural equivalence with the reference
   interpreter (including a QCheck random-program property), speculation
   semantics, squash recovery, store forwarding and guard behaviour. *)

module I = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Mem = Pv_isa.Mem
module Program = Pv_isa.Program
module Asm = Pv_isa.Asm
module Iss = Pv_isa.Iss
module Memsys = Pv_uarch.Memsys
module Pipeline = Pv_uarch.Pipeline
module Guard = Pv_uarch.Guard

let check = Alcotest.check

let func fid name space body = { Program.fid; name; space; body }

let run_both prog ~start =
  let iss = Iss.run ~asid:1 ~mem:(Mem.create ()) prog ~start in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let ooo = Pipeline.run pipe ~asid:1 ~start in
  (iss, ooo)

let same_outcome (iss : Iss.result) (ooo : Pipeline.result) =
  match (iss.Iss.outcome, ooo.Pipeline.outcome) with
  | Iss.Halted, Pipeline.Halted -> true
  | Iss.Fault _, Pipeline.Fault _ -> true
  | Iss.Out_of_fuel, Pipeline.Out_of_fuel -> true
  | _ -> false

let assert_equivalent prog ~start =
  let iss, ooo = run_both prog ~start in
  Alcotest.(check bool)
    (Printf.sprintf "outcomes agree (iss=%s ooo=%s)"
       (match iss.Iss.outcome with
       | Iss.Halted -> "halted"
       | Iss.Out_of_fuel -> "fuel"
       | Iss.Fault m -> "fault:" ^ m)
       (match ooo.Pipeline.outcome with
       | Pipeline.Halted -> "halted"
       | Pipeline.Out_of_fuel -> "fuel"
       | Pipeline.Fault m -> "fault:" ^ m))
    true (same_outcome iss ooo);
  if iss.Iss.outcome = Iss.Halted then begin
    check Alcotest.(array int) "registers agree" iss.Iss.regs ooo.Pipeline.regs;
    check Alcotest.int "instruction counts agree" iss.Iss.steps ooo.Pipeline.committed
  end

let test_equiv_loop_with_memory () =
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 0;
  Asm.li a 3 50;
  Asm.li a 4 Layout.user_data_base;
  Asm.place a loop;
  Asm.branch a I.Ge 1 3 done_;
  Asm.alu a I.Mul 5 1 1;
  Asm.store a 4 5 0;
  Asm.load a 6 4 0;
  Asm.alu a I.Add 2 2 6;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  assert_equivalent
    (Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ])
    ~start:0

let test_equiv_calls () =
  let main = [| I.Limm (1, 3); I.Call 1; I.Call 1; I.Call 1; I.Halt |] in
  let callee = [| I.Alu (I.Mul, 1, 1, 1); I.Ret |] in
  assert_equivalent
    (Program.of_funcs [ func 0 "m" Layout.User main; func 1 "c" Layout.User callee ])
    ~start:0

let test_equiv_icall () =
  let tva = Layout.func_base Layout.User 1 in
  let main = [| I.Limm (1, tva); I.Icall 1; I.Icall 1; I.Halt |] in
  let callee = [| I.Alui (I.Add, 2, 2, 5); I.Ret |] in
  assert_equivalent
    (Program.of_funcs [ func 0 "m" Layout.User main; func 1 "c" Layout.User callee ])
    ~start:0

let test_equiv_data_branches () =
  (* Branches on loaded values: heavy misprediction traffic. *)
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  let skip = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 3 40;
  Asm.li a 4 Layout.user_data_base;
  Asm.li a 7 0;
  Asm.place a loop;
  Asm.branch a I.Ge 1 3 done_;
  Asm.alui a I.Mul 5 1 7;
  Asm.alui a I.And 5 5 127;
  Asm.store a 4 5 0;
  Asm.load a 6 4 0;
  Asm.alui a I.And 6 6 3;
  Asm.branch a I.Ne 6 14 skip;
  Asm.alui a I.Add 7 7 1;
  Asm.place a skip;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  assert_equivalent
    (Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ])
    ~start:0

let test_equiv_fault () =
  (* Falling off a function end faults identically. *)
  assert_equivalent (Program.of_funcs [ func 0 "m" Layout.User [| I.Nop |] ]) ~start:0

(* Random-program equivalence: the strongest oracle we have.  Programs are
   built from a restricted but expressive instruction pool with bounded
   loops (a countdown register guarantees termination). *)
let gen_program =
  let open QCheck.Gen in
  let reg = int_range 1 7 in
  let body_insn =
    frequency
      [
        (4, map2 (fun rd v -> I.Limm (rd, v)) reg (int_range 0 1000));
        (6, map3 (fun rd r1 r2 -> I.Alu (I.Add, rd, r1, r2)) reg reg reg);
        (3, map3 (fun rd r1 v -> I.Alui (I.Mul, rd, r1, v)) reg reg (int_range 0 9));
        (3, map2 (fun rd off -> I.Load (rd, 8, off * 8)) reg (int_range 0 63));
        (3, map2 (fun rv off -> I.Store (8, rv, off * 8)) reg (int_range 0 63));
        (1, return I.Fence);
        (1, map2 (fun ra off -> I.Flush (ra, off * 8)) (return 8) (int_range 0 63));
      ]
  in
  let* n = int_range 5 25 in
  let* body = list_repeat n body_insn in
  let* br_reg = reg in
  (* Wrap the random body into a bounded loop with a data-dependent branch. *)
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  let skip = Asm.fresh_label a in
  Asm.li a 9 0;
  Asm.li a 10 12;
  Asm.li a 8 Layout.user_data_base;
  Asm.li a 14 0;
  Asm.place a loop;
  Asm.branch a I.Ge 9 10 done_;
  List.iter (Asm.emit a) body;
  Asm.alui a I.And 6 br_reg 1;
  Asm.branch a I.Ne 6 14 skip;
  Asm.alui a I.Add 5 5 1;
  Asm.place a skip;
  Asm.alui a I.Add 9 9 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  return (Program.of_funcs [ func 0 "rand" Layout.User (Asm.finish a) ])

let equivalence_prop =
  QCheck.Test.make ~name:"OOO pipeline matches the in-order reference" ~count:120
    (QCheck.make gen_program)
    (fun prog ->
      let iss, ooo = run_both prog ~start:0 in
      same_outcome iss ooo
      && (iss.Iss.outcome <> Iss.Halted
         || (iss.Iss.regs = ooo.Pipeline.regs && iss.Iss.steps = ooo.Pipeline.committed)))

(* --- speculation semantics --- *)

let test_transient_load_leaves_cache_state () =
  (* A load on the wrong path of a mispredicted branch must fill the cache
     even though it never commits: the covert channel. *)
  let secret_line = Layout.direct_map_va 4096 in
  let a = Asm.create () in
  let out = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 Layout.user_data_base;
  Asm.load a 3 2 0 (* slow bound: flushed below *);
  Asm.branch a I.Ne 3 1 out (* actually taken: r3=1 *);
  Asm.li a 4 secret_line;
  Asm.load a 5 4 0 (* transient *);
  Asm.place a out;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let mem = Mem.create () in
  Mem.store mem (Layout.phys_key ~asid:1 Layout.user_data_base) 1;
  let ms = Memsys.create mem in
  let pipe = Pipeline.create ms prog in
  (* Train the branch toward not-taken (the transient path). *)
  Mem.store mem (Layout.phys_key ~asid:1 Layout.user_data_base) 0;
  ignore (Pipeline.run pipe ~asid:1 ~start:0);
  Mem.store mem (Layout.phys_key ~asid:1 Layout.user_data_base) 1;
  Memsys.flush_line ms (Layout.phys_key ~asid:1 Layout.user_data_base);
  Memsys.flush_line ms secret_line;
  let r = Pipeline.run pipe ~asid:1 ~start:0 in
  Alcotest.(check bool) "halted" true (r.Pipeline.outcome = Pipeline.Halted);
  check Alcotest.int "transient load never committed" 0 r.Pipeline.regs.(5);
  Alcotest.(check bool) "but its line is cached" true
    (Memsys.would_hit_l1d ms secret_line)

let test_guard_blocks_transient_fill () =
  (* Same setup under a block-everything-speculative guard: no fill. *)
  let secret_line = Layout.direct_map_va 4096 in
  let a = Asm.create () in
  let out = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 Layout.user_data_base;
  Asm.load a 3 2 0;
  Asm.branch a I.Ne 3 1 out;
  Asm.li a 4 secret_line;
  Asm.load a 5 4 0;
  Asm.place a out;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let mem = Mem.create () in
  let ms = Memsys.create mem in
  let pipe = Pipeline.create ms prog in
  Pipeline.set_guard pipe
    {
      Guard.name = "fence-all";
      check =
        (fun q -> if q.Guard.speculative then Guard.Block Guard.Baseline else Guard.Allow);
      notify_vp = None;
      spec_read = None;
      notify_squash = None;
      shadow_btb = false;
    };
  Mem.store mem (Layout.phys_key ~asid:1 Layout.user_data_base) 0;
  ignore (Pipeline.run pipe ~asid:1 ~start:0);
  Mem.store mem (Layout.phys_key ~asid:1 Layout.user_data_base) 1;
  Memsys.flush_line ms (Layout.phys_key ~asid:1 Layout.user_data_base);
  Memsys.flush_line ms secret_line;
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  ignore (Pipeline.run pipe ~asid:1 ~start:0);
  let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
  Alcotest.(check bool) "secret line not cached" false (Memsys.would_hit_l1d ms secret_line);
  Alcotest.(check bool) "a fence fired" true (delta.Pipeline.fences_baseline > 0)

let test_fenced_load_still_commits () =
  (* Blocking delays but never changes architectural results. *)
  let a = Asm.create () in
  Asm.li a 1 (Layout.direct_map_va 0);
  Asm.li a 2 3;
  Asm.li a 3 0;
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.place a loop;
  Asm.branch a I.Ge 3 2 done_;
  Asm.load a 4 1 0;
  Asm.alui a I.Add 3 3 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let mem = Mem.create () in
  Mem.store mem (Layout.direct_map_va 0) 1234;
  let ms = Memsys.create mem in
  let pipe = Pipeline.create ms prog in
  Pipeline.set_guard pipe
    {
      Guard.name = "fence-all";
      check =
        (fun q -> if q.Guard.speculative then Guard.Block Guard.Baseline else Guard.Allow);
      notify_vp = None;
      spec_read = None;
      notify_squash = None;
      shadow_btb = false;
    };
  let r = Pipeline.run pipe ~asid:1 ~start:0 in
  check Alcotest.int "value loaded" 1234 r.Pipeline.regs.(4)

let test_fence_slower_than_unsafe () =
  let build () =
    let a = Asm.create () in
    let loop = Asm.fresh_label a in
    let done_ = Asm.fresh_label a in
    let skip = Asm.fresh_label a in
    Asm.li a 1 0;
    Asm.li a 2 200;
    Asm.li a 3 Layout.user_data_base;
    Asm.li a 14 0;
    Asm.place a loop;
    Asm.branch a I.Ge 1 2 done_;
    Asm.load a 4 3 0;
    Asm.alui a I.And 5 4 7;
    Asm.branch a I.Ne 5 14 skip;
    Asm.alui a I.Add 6 6 1;
    Asm.place a skip;
    Asm.alui a I.Add 1 1 1;
    Asm.jump a loop;
    Asm.place a done_;
    Asm.halt a;
    Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ]
  in
  let cycles guard =
    let ms = Memsys.create (Pv_isa.Mem.create ()) in
    let pipe = Pipeline.create ms (build ()) in
    Pipeline.set_guard pipe guard;
    (Pipeline.run pipe ~asid:1 ~start:0).Pipeline.cycles
  in
  let unsafe = cycles Guard.allow_all in
  let fence =
    cycles
      {
        Guard.name = "fence";
        check =
          (fun q -> if q.Guard.speculative then Guard.Block Guard.Baseline else Guard.Allow);
        notify_vp = None;
        spec_read = None;
        notify_squash = None;
        shadow_btb = false;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "fence (%d) slower than unsafe (%d)" fence unsafe)
    true
    (fence > unsafe)

let test_store_load_forwarding () =
  (* A load reading an in-flight store's data must see the stored value. *)
  let a = Asm.create () in
  Asm.li a 1 Layout.user_data_base;
  Asm.li a 2 777;
  Asm.store a 1 2 0;
  Asm.load a 3 1 0;
  Asm.store a 1 14 0 (* overwrite with 0 *);
  Asm.load a 4 1 0;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let r = Pipeline.run pipe ~asid:1 ~start:0 in
  check Alcotest.int "forwarded" 777 r.Pipeline.regs.(3);
  check Alcotest.int "youngest store wins" 0 r.Pipeline.regs.(4)

let test_syscall_register_isolation () =
  (* Kernel clobbers must not leak back into user registers. *)
  let user = [| I.Limm (1, 5); I.Limm (2, 7); I.Syscall; I.Alu (I.Add, 3, 1, 2); I.Halt |] in
  let kern = [| I.Limm (1, 1000); I.Limm (2, 1000); I.Limm (3, 1000); I.Sysret |] in
  let prog =
    Program.of_funcs [ func 0 "u" Layout.User user; func 1 "k" Layout.Kernel kern ]
  in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let hooks =
    {
      Pipeline.on_syscall = (fun _ -> Iss.Redirect (1, []));
      on_sysret = (fun regs -> regs.(15) <- 88; Iss.Skip);
      on_commit = None;
    }
  in
  let r = Pipeline.run ~hooks pipe ~asid:1 ~start:0 in
  check Alcotest.int "user regs restored" 12 r.Pipeline.regs.(3);
  check Alcotest.int "return value delivered" 88 r.Pipeline.regs.(15)

let test_kernel_cycle_accounting () =
  let user = [| I.Syscall; I.Halt |] in
  let kern = Array.append (Array.make 50 I.Nop) [| I.Sysret |] in
  let prog =
    Program.of_funcs [ func 0 "u" Layout.User user; func 1 "k" Layout.Kernel kern ]
  in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let hooks =
    { Pipeline.null_hooks with Pipeline.on_syscall = (fun _ -> Iss.Redirect (1, [])) }
  in
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  ignore (Pipeline.run ~hooks pipe ~asid:1 ~start:0);
  let d = Pipeline.diff_counters (Pipeline.counters pipe) before in
  Alcotest.(check bool) "kernel cycles counted" true (d.Pipeline.kernel_cycles > 0);
  Alcotest.(check bool) "not all cycles are kernel" true
    (d.Pipeline.kernel_cycles < d.Pipeline.cycles);
  check Alcotest.int "kernel instructions" 51 d.Pipeline.committed_kernel;
  check Alcotest.int "one syscall" 1 d.Pipeline.syscalls

let test_out_of_fuel () =
  let prog = Program.of_funcs [ func 0 "spin" Layout.User [| I.Jump 0 |] ] in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let r = Pipeline.run ~fuel:500 pipe ~asid:1 ~start:0 in
  Alcotest.(check bool) "out of fuel" true (r.Pipeline.outcome = Pipeline.Out_of_fuel);
  check Alcotest.int "cycles = fuel" 500 r.Pipeline.cycles

let test_mispredict_counted () =
  (* A data-dependent branch with a random pattern must mispredict. *)
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  let skip = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 100;
  Asm.li a 7 1;
  Asm.li a 14 0;
  Asm.place a loop;
  Asm.branch a I.Ge 1 2 done_;
  (* xorshift-ish pseudo-random bit *)
  Asm.alui a I.Mul 7 7 1103515245;
  Asm.alui a I.Add 7 7 12345;
  Asm.alui a I.Shr 6 7 16;
  Asm.alui a I.And 6 6 1;
  Asm.branch a I.Ne 6 14 skip;
  Asm.alui a I.Add 5 5 1;
  Asm.place a skip;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  let r = Pipeline.run pipe ~asid:1 ~start:0 in
  let d = Pipeline.diff_counters (Pipeline.counters pipe) before in
  Alcotest.(check bool) "halted" true (r.Pipeline.outcome = Pipeline.Halted);
  Alcotest.(check bool) "mispredicts happen" true (d.Pipeline.branch_mispredicts > 10);
  check Alcotest.int "squashes = mispredicts" d.Pipeline.branch_mispredicts d.Pipeline.squashes

let test_retpoline_costs_cycles () =
  (* A retpolined pipeline must run indirect-call-heavy code slower. *)
  let tva = Layout.func_base Layout.User 1 in
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 50;
  Asm.li a 3 tva;
  Asm.place a loop;
  Asm.branch a I.Ge 1 2 done_;
  Asm.icall a 3;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let prog =
    Program.of_funcs
      [
        func 0 "m" Layout.User (Asm.finish a);
        func 1 "callee" Layout.User [| I.Alui (I.Add, 5, 5, 1); I.Ret |];
      ]
  in
  let cycles config =
    let ms = Memsys.create (Pv_isa.Mem.create ()) in
    let pipe = Pipeline.create ~config ms prog in
    (Pipeline.run pipe ~asid:1 ~start:0).Pipeline.cycles
  in
  let plain = cycles Pipeline.default_config in
  let retp = cycles (Perspective.Spot.retpoline Pipeline.default_config) in
  Alcotest.(check bool)
    (Printf.sprintf "retpoline (%d) slower than BTB (%d)" retp plain)
    true
    (retp > plain + 300)

let test_kpti_costs_per_syscall () =
  let user = [| I.Syscall; I.Syscall; I.Syscall; I.Halt |] in
  let kern = [| I.Sysret |] in
  let prog =
    Program.of_funcs [ func 0 "u" Layout.User user; func 1 "k" Layout.Kernel kern ]
  in
  let hooks =
    { Pipeline.null_hooks with Pipeline.on_syscall = (fun _ -> Iss.Redirect (1, [])) }
  in
  let cycles config =
    let ms = Memsys.create (Pv_isa.Mem.create ()) in
    let pipe = Pipeline.create ~config ms prog in
    (Pipeline.run ~hooks pipe ~asid:1 ~start:0).Pipeline.cycles
  in
  let plain = cycles Pipeline.default_config in
  let kpti = cycles (Perspective.Spot.kpti Pipeline.default_config) in
  let per_call =
    (Perspective.Spot.kpti_entry_extra + Perspective.Spot.kpti_exit_extra) * 3
  in
  check Alcotest.int "exactly the CR3 cost per syscall" (plain + per_call) kpti

let test_ret_window_widens_with_flushed_stack () =
  (* Flushing the return-stack line delays return resolution - the
     Spectre-RSB lever the attacks rely on. *)
  let prog =
    Program.of_funcs
      [
        func 0 "m" Layout.User [| I.Call 1; I.Halt |];
        func 1 "callee" Layout.User [| I.Alui (I.Add, 5, 5, 1); I.Ret |];
      ]
  in
  let cycles ~flush =
    let ms = Memsys.create (Pv_isa.Mem.create ()) in
    let pipe = Pipeline.create ms prog in
    if flush then Memsys.flush_line ms (Pipeline.ret_stack_va ~asid:1 ~depth:1)
    else ignore (Memsys.data_read ms (Pipeline.ret_stack_va ~asid:1 ~depth:1));
    (Pipeline.run pipe ~asid:1 ~start:0).Pipeline.cycles
  in
  let warm = cycles ~flush:false in
  let cold = cycles ~flush:true in
  Alcotest.(check bool)
    (Printf.sprintf "cold return (%d) much slower than warm (%d)" cold warm)
    true
    (cold > warm + 80)

let suite =
  [
    ( "pipeline.equivalence",
      [
        Alcotest.test_case "loop with memory" `Quick test_equiv_loop_with_memory;
        Alcotest.test_case "calls" `Quick test_equiv_calls;
        Alcotest.test_case "indirect calls" `Quick test_equiv_icall;
        Alcotest.test_case "data branches" `Quick test_equiv_data_branches;
        Alcotest.test_case "fault parity" `Quick test_equiv_fault;
        QCheck_alcotest.to_alcotest equivalence_prop;
      ] );
    ( "pipeline.speculation",
      [
        Alcotest.test_case "transient load fills cache" `Quick
          test_transient_load_leaves_cache_state;
        Alcotest.test_case "guard blocks transient fill" `Quick
          test_guard_blocks_transient_fill;
        Alcotest.test_case "fenced load still commits" `Quick test_fenced_load_still_commits;
        Alcotest.test_case "fence costs cycles" `Quick test_fence_slower_than_unsafe;
        Alcotest.test_case "mispredicts counted" `Quick test_mispredict_counted;
      ] );
    ( "pipeline.mechanics",
      [
        Alcotest.test_case "store-to-load forwarding" `Quick test_store_load_forwarding;
        Alcotest.test_case "syscall register isolation" `Quick
          test_syscall_register_isolation;
        Alcotest.test_case "kernel cycle accounting" `Quick test_kernel_cycle_accounting;
        Alcotest.test_case "fuel exhaustion" `Quick test_out_of_fuel;
        Alcotest.test_case "retpoline cost" `Quick test_retpoline_costs_cycles;
        Alcotest.test_case "KPTI cost" `Quick test_kpti_costs_per_syscall;
        Alcotest.test_case "return window widening" `Quick
          test_ret_window_widens_with_flushed_stack;
      ] );
  ]
