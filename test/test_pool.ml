(* The domain pool and the determinism contract of the parallel experiment
   runner: merged results — and the tables rendered from them — must be
   byte-identical for every worker count. *)

module Pool = Pv_util.Pool
module Perf = Pv_experiments.Perf
module Perf_report = Pv_experiments.Perf_report
module Schemes = Pv_experiments.Schemes
module Security = Pv_experiments.Security
module Tab = Pv_util.Tab
module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps

let check = Alcotest.check

(* --- pool mechanics -------------------------------------------------- *)

let test_empty () =
  check Alcotest.(list int) "no jobs" [] (Pool.run ~jobs:4 (fun x -> x) []);
  Pool.with_pool ~jobs:3 (fun p ->
      check Alcotest.(list int) "no jobs, pooled" [] (Pool.map p (fun x -> x) []))

let test_one_job () =
  check Alcotest.(list int) "one job" [ 14 ] (Pool.run ~jobs:4 (fun x -> 2 * x) [ 7 ])

let test_many_jobs_few_workers () =
  let xs = List.init 200 (fun i -> i) in
  let expected = List.map (fun i -> i * i) xs in
  check Alcotest.(list int) "200 jobs on 3 workers" expected
    (Pool.run ~jobs:3 (fun i -> i * i) xs)

let test_order_with_skewed_durations () =
  (* Front-load the heavy jobs so light ones finish first on other workers;
     the result order must still be submission order. *)
  let work i =
    let trips = if i < 4 then 2_000_000 else 100 in
    let acc = ref i in
    for _ = 1 to trips do
      acc := (!acc * 1103515245) + 12345
    done;
    ignore !acc;
    i
  in
  let xs = List.init 64 (fun i -> i) in
  check Alcotest.(list int) "order preserved" xs (Pool.run ~jobs:4 work xs)

let test_serial_path_equals_map () =
  let f i = (3 * i) - 1 in
  let xs = List.init 17 (fun i -> i) in
  check Alcotest.(list int) "-j 1 is List.map" (List.map f xs) (Pool.run ~jobs:1 f xs)

exception Boom of int

let test_exception_propagates () =
  let f i = if i mod 10 = 3 then raise (Boom i) else i in
  (* The lowest-index failure wins, for every worker count. *)
  List.iter
    (fun jobs ->
      match Pool.run ~jobs f (List.init 40 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        check Alcotest.int (Printf.sprintf "first failure at -j %d" jobs) 3 i)
    [ 1; 2; 4; 8 ]

let test_pool_survives_job_failure () =
  (* A raising batch must not wedge the pool: the same pool still runs the
     next batch, and shutdown joins all domains cleanly. *)
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p (fun i -> if i = 5 then failwith "job 5" else i) (List.init 9 Fun.id) with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> check Alcotest.string "message" "job 5" m);
      check Alcotest.(list int) "pool usable after failure" [ 2; 4; 6 ]
        (Pool.map p (fun i -> 2 * i) [ 1; 2; 3 ]))

let test_shutdown_semantics () =
  let p = Pool.create ~jobs:3 in
  check Alcotest.int "size" 3 (Pool.size p);
  check Alcotest.(list int) "works" [ 1; 2 ] (Pool.map p Fun.id [ 1; 2 ]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "map after shutdown" (Invalid_argument "Pool.map: pool is shut down")
    (fun () -> ignore (Pool.map p Fun.id [ 1 ]))

let test_results_actually_parallel () =
  (* Sanity that jobs really run off the calling domain.  Two jobs rendezvous:
     each waits until both have started, which can only happen if two domains
     run them concurrently — so the recorded domain ids must differ. *)
  let arrived = Atomic.make 0 in
  let job _ =
    Atomic.incr arrived;
    let spins = ref 0 in
    while Atomic.get arrived < 2 && !spins < 2_000_000_000 do
      incr spins;
      Domain.cpu_relax ()
    done;
    (Domain.self () :> int)
  in
  match Pool.run ~jobs:4 job [ 0; 1 ] with
  | [ a; b ] -> Alcotest.(check bool) "two domains participated" true (a <> b)
  | _ -> Alcotest.fail "unexpected result shape"

(* --- supervised mapping ----------------------------------------------- *)

module Fault = Pv_util.Fault

(* The determinism contract of an outcome list excludes wall-clock. *)
let outcome_shape (o : _ Pool.outcome) =
  ( (match o.Pool.result with
    | Ok v -> Ok v
    | Error e -> Error (Printexc.to_string e.Pool.exn, e.Pool.classification = Pool.Transient)),
    o.Pool.attempts )

let test_map_results_clean () =
  Pool.with_pool ~jobs:3 (fun p ->
      let outcomes = Pool.map_results p (fun i -> i * i) (List.init 20 Fun.id) in
      List.iteri
        (fun i o ->
          check Alcotest.int "attempts" 1 o.Pool.attempts;
          match o.Pool.result with
          | Ok v -> check Alcotest.int "value" (i * i) v
          | Error _ -> Alcotest.fail "unexpected failure")
        outcomes)

let test_map_results_captures_failures () =
  (* Unlike map, one bad job must not eat the batch. *)
  Pool.with_pool ~jobs:2 (fun p ->
      let outcomes =
        Pool.map_results p (fun i -> if i = 3 then failwith "bad" else i) (List.init 6 Fun.id)
      in
      let oks = List.filter (fun o -> Result.is_ok o.Pool.result) outcomes in
      check Alcotest.int "five survivors" 5 (List.length oks);
      match (List.nth outcomes 3).Pool.result with
      | Error e ->
        Alcotest.(check bool) "permanent" true (e.Pool.classification = Pool.Permanent)
      | Ok _ -> Alcotest.fail "job 3 should fail")

let test_flaky_retry () =
  (* flaky = crashes while attempt < 1, then succeeds: one retry heals it. *)
  let fault = Fault.plan [ { Fault.index = 2; kind = Fault.Crash; first_attempts = 1 } ] in
  Pool.with_pool ~jobs:2 (fun p ->
      let no_retry = Pool.map_results ~fault p Fun.id (List.init 4 Fun.id) in
      (match (List.nth no_retry 2).Pool.result with
      | Error e ->
        Alcotest.(check bool) "transient" true (e.Pool.classification = Pool.Transient)
      | Ok _ -> Alcotest.fail "should crash without retries");
      let healed = Pool.map_results ~retries:1 ~fault p Fun.id (List.init 4 Fun.id) in
      let o = List.nth healed 2 in
      check Alcotest.int "second attempt succeeded" 2 o.Pool.attempts;
      Alcotest.(check bool) "healed" true (o.Pool.result = Ok 2))

let test_poison_is_permanent () =
  (* Poison classifies permanent: retries must not be spent on it. *)
  let fault = Fault.plan [ { Fault.index = 1; kind = Fault.Poison; first_attempts = Fault.always } ] in
  Pool.with_pool ~jobs:2 (fun p ->
      let outcomes = Pool.map_results ~retries:5 ~fault p Fun.id (List.init 3 Fun.id) in
      let o = List.nth outcomes 1 in
      check Alcotest.int "no retries burned" 1 o.Pool.attempts;
      match o.Pool.result with
      | Error { Pool.exn = Fault.Poisoned _; classification = Pool.Permanent; _ } -> ()
      | _ -> Alcotest.fail "expected permanent Poisoned")

let test_seeded_faults_deterministic () =
  (* The fault-injected determinism claim: same seed, any -j, identical
     outcome shapes (values, attempt counts, failure reasons). *)
  let fault = Fault.seeded ~seed:7 ~crash:0.3 ~slow:0.2 ~poison:0.15 () in
  let shapes jobs =
    Pool.with_pool ~jobs (fun p ->
        List.map outcome_shape
          (Pool.map_results ~retries:1 ~fault p (fun i -> 3 * i) (List.init 40 Fun.id)))
  in
  let serial = shapes 1 in
  Alcotest.(check bool) "some jobs failed" true
    (List.exists (fun (r, _) -> Result.is_error r) serial);
  Alcotest.(check bool) "some jobs retried" true
    (List.exists (fun (_, attempts) -> attempts > 1) serial);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "-j %d outcomes identical to -j 1" jobs)
        true
        (shapes jobs = serial))
    [ 2; 4 ]

let test_on_outcome_hook () =
  (* Called once per job with its final outcome; hook exceptions ignored. *)
  let seen = Atomic.make 0 in
  let hook _ (o : _ Pool.outcome) =
    if Result.is_ok o.Pool.result then Atomic.incr seen;
    failwith "hook failure must be swallowed"
  in
  Pool.with_pool ~jobs:3 (fun p ->
      let outcomes = Pool.map_results ~on_outcome:hook p Fun.id (List.init 12 Fun.id) in
      check Alcotest.int "all outcomes back" 12 (List.length outcomes));
  check Alcotest.int "hook saw every success" 12 (Atomic.get seen)

let test_submit_crash_proof () =
  (* A raising fire-and-forget job must not kill its worker domain. *)
  Pool.with_pool ~jobs:2 (fun p ->
      for _ = 1 to 8 do
        Pool.submit p (fun () -> failwith "worker must survive this")
      done;
      check Alcotest.(list int) "pool still serves maps" [ 10; 20 ]
        (Pool.map p (fun i -> 10 * i) [ 1; 2 ]))

let test_shutdown_drains_pending () =
  (* Every accepted job runs even if shutdown follows immediately. *)
  let ran = Atomic.make 0 in
  let p = Pool.create ~jobs:3 in
  for _ = 1 to 50 do
    Pool.submit p (fun () -> Atomic.incr ran)
  done;
  Pool.shutdown p;
  check Alcotest.int "all pending jobs ran" 50 (Atomic.get ran);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Pool.submit p (fun () -> ()))

let test_fatal_exception_escapes () =
  (* Regression: the worker's catch-all used to swallow runtime-fatal
     exceptions ([Out_of_memory], [Stack_overflow]) exactly like a job's
     ordinary failure, so a pool could silently lose a domain to resource
     exhaustion.  A fatal raise must now surface to the caller — from
     [shutdown]'s drain on a size-1 pool, and via [Domain.join] when a
     worker domain died of it. *)
  let p = Pool.create ~jobs:1 in
  Pool.submit p (fun () -> raise Stack_overflow);
  (match Pool.shutdown p with
  | () -> Alcotest.fail "fatal exception was swallowed by the drain"
  | exception Stack_overflow -> ());
  let p = Pool.create ~jobs:4 in
  Pool.submit p (fun () -> raise Out_of_memory);
  (match Pool.shutdown p with
  | () -> Alcotest.fail "fatal exception was swallowed by a worker"
  | exception Out_of_memory -> ());
  (* Ordinary failures still leave every domain alive (the warn-once
     policy): a fresh pool mixing failing and clean jobs drains fully. *)
  let ran = Atomic.make 0 in
  Pool.with_pool ~jobs:2 (fun p ->
      for i = 1 to 20 do
        Pool.submit p (fun () ->
            if i mod 2 = 0 then failwith "ordinary" else Atomic.incr ran)
      done);
  check Alcotest.int "clean jobs all ran" 10 (Atomic.get ran)

let test_scheduler_counters () =
  (* [local_pops + steals] counts exactly the jobs taken off the deques:
     one per [submit] at quiescence; parks and unparks pair up once every
     worker has been joined. *)
  let p = Pool.create ~jobs:4 in
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.submit p (fun () -> Atomic.incr hits)
  done;
  Pool.shutdown p;
  let c = Pool.counters p in
  check Alcotest.int "all jobs ran" 50 (Atomic.get hits);
  check Alcotest.int "local_pops + steals = jobs taken" 50
    (c.Pool.local_pops + c.Pool.steals);
  check Alcotest.bool "failed steals non-negative" true (c.Pool.failed_steals >= 0);
  check Alcotest.int "parks match unparks after join" c.Pool.parks c.Pool.unparks;
  (* The counters export is a plain metrics write, not a registry the
     byte-identity contract covers. *)
  let reg = Pv_util.Metrics.create () in
  Pool.observe_metrics p reg;
  let snap = Pv_util.Metrics.snapshot reg in
  check Alcotest.bool "export carries the steal counter" true
    (Pv_util.Metrics.find snap "pool.steals" <> None)

let test_matches_reference_pool () =
  (* The frozen shared-queue pool is the semantic oracle: same results on
     a clean batch, same first failure on a dirty one, at every size. *)
  let xs = List.init 257 (fun i -> i) in
  let f i = (i * 7919) lxor (i lsl 3) in
  List.iter
    (fun jobs ->
      let ws = Pool.run ~jobs f xs in
      let rf = Pv_util.Pool_ref.with_pool ~jobs (fun p -> Pv_util.Pool_ref.map p f xs) in
      check Alcotest.(list int) (Printf.sprintf "clean batch at -j %d" jobs) rf ws)
    [ 1; 2; 4; 8 ];
  let g i = if i mod 50 = 37 then raise (Boom i) else i in
  List.iter
    (fun jobs ->
      let first p_run = match p_run () with _ -> None | exception Boom i -> Some i in
      let ws = first (fun () -> Pool.run ~jobs g xs) in
      let rf =
        first (fun () ->
            Pv_util.Pool_ref.with_pool ~jobs (fun p -> Pv_util.Pool_ref.map p g xs))
      in
      check Alcotest.(option int) (Printf.sprintf "first failure at -j %d" jobs) rf ws)
    [ 1; 2; 4; 8 ]

(* --- determinism of the experiment layer ------------------------------ *)

(* Structural identity of run records; counters are all-int records so
   polymorphic equality is exact, and floats must match bitwise — that is
   the determinism claim. *)
let runs_identical (a : Perf.run) (b : Perf.run) = a = b

let matrices_identical m1 m2 =
  List.length m1 = List.length m2
  && List.for_all2
       (fun (n1, rs1) (n2, rs2) ->
         n1 = n2 && List.length rs1 = List.length rs2 && List.for_all2 runs_identical rs1 rs2)
       m1 m2

let fig92_variants = [ Schemes.unsafe; Schemes.fence; Schemes.perspective ]

let test_lebench_matrix_deterministic () =
  (* Fig 9.2-shaped job set: LEBench tests x schemes, scaled down. *)
  let tests = [ Lebench.find "ref"; Lebench.find "select"; Lebench.find "mmap" ] in
  let serial = Perf.lebench_matrix ~scale:0.2 ~jobs:1 ~tests ~variants:fig92_variants () in
  let parallel = Perf.lebench_matrix ~scale:0.2 ~jobs:4 ~tests ~variants:fig92_variants () in
  Alcotest.(check bool) "-j 4 run records identical to -j 1" true
    (matrices_identical serial parallel);
  (* The acceptance criterion verbatim: rendered tables are byte-identical. *)
  check Alcotest.string "fig 9.2 table bytes"
    (Tab.to_string (Perf_report.fig_lebench serial))
    (Tab.to_string (Perf_report.fig_lebench parallel))

let test_apps_matrix_deterministic () =
  (* Fig 9.3-shaped job set: apps x schemes. *)
  let apps = [ Apps.memcached; Apps.redis ] in
  let variants = [ Schemes.unsafe; Schemes.perspective ] in
  let serial = Perf.apps_matrix ~scale:0.15 ~jobs:1 ~apps ~variants () in
  let parallel = Perf.apps_matrix ~scale:0.15 ~jobs:4 ~apps ~variants () in
  Alcotest.(check bool) "-j 4 run records identical to -j 1" true
    (matrices_identical serial parallel);
  check Alcotest.string "fig 9.3 table bytes"
    (Tab.to_string (Perf_report.fig_apps serial))
    (Tab.to_string (Perf_report.fig_apps parallel))

let test_counters_and_fences_identical () =
  (* Spot-check the fields the tables are built from, including the nested
     counter record and fence counts. *)
  let tests = [ Lebench.find "poll" ] in
  let run jobs =
    match Perf.lebench_matrix ~scale:0.2 ~jobs ~tests ~variants:[ Schemes.perspective ] () with
    | [ (_, [ r ]) ] -> r
    | _ -> Alcotest.fail "unexpected matrix shape"
  in
  let a = run 1 and b = run 4 in
  check Alcotest.int "cycles" a.Perf.cycles b.Perf.cycles;
  check Alcotest.int "committed" a.Perf.committed b.Perf.committed;
  check Alcotest.int "isv fences" a.Perf.counters.Pv_uarch.Pipeline.fences_isv
    b.Perf.counters.Pv_uarch.Pipeline.fences_isv;
  check Alcotest.int "dsv fences" a.Perf.counters.Pv_uarch.Pipeline.fences_dsv
    b.Perf.counters.Pv_uarch.Pipeline.fences_dsv;
  Alcotest.(check (option (float 0.0)))
    "isv hit rate (bitwise)" a.Perf.isv_hit_rate b.Perf.isv_hit_rate;
  Alcotest.(check (option (float 0.0)))
    "dsv hit rate (bitwise)" a.Perf.dsv_hit_rate b.Perf.dsv_hit_rate

let test_pocs_deterministic () =
  let serial = Security.run_pocs ~jobs:1 () in
  let parallel = Security.run_pocs ~jobs:3 () in
  Alcotest.(check bool) "verdict lists identical" true (serial = parallel);
  check Alcotest.int "28 verdicts" 28 (List.length parallel)

let suite =
  [
    ( "pool.mechanics",
      [
        Alcotest.test_case "empty batch" `Quick test_empty;
        Alcotest.test_case "one job" `Quick test_one_job;
        Alcotest.test_case "jobs >> workers" `Quick test_many_jobs_few_workers;
        Alcotest.test_case "order under skew" `Quick test_order_with_skewed_durations;
        Alcotest.test_case "-j 1 serial path" `Quick test_serial_path_equals_map;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "pool survives failure" `Quick test_pool_survives_job_failure;
        Alcotest.test_case "shutdown" `Quick test_shutdown_semantics;
        Alcotest.test_case "uses several domains" `Quick test_results_actually_parallel;
      ] );
    ( "pool.supervised",
      [
        Alcotest.test_case "map_results clean batch" `Quick test_map_results_clean;
        Alcotest.test_case "failures captured per job" `Quick test_map_results_captures_failures;
        Alcotest.test_case "flaky job heals on retry" `Quick test_flaky_retry;
        Alcotest.test_case "poison is permanent" `Quick test_poison_is_permanent;
        Alcotest.test_case "seeded faults deterministic" `Quick test_seeded_faults_deterministic;
        Alcotest.test_case "on_outcome hook" `Quick test_on_outcome_hook;
        Alcotest.test_case "submit crash-proof" `Quick test_submit_crash_proof;
        Alcotest.test_case "shutdown drains pending" `Quick test_shutdown_drains_pending;
        Alcotest.test_case "fatal exceptions escape" `Quick test_fatal_exception_escapes;
        Alcotest.test_case "scheduler counters" `Quick test_scheduler_counters;
        Alcotest.test_case "matches reference pool" `Quick test_matches_reference_pool;
      ] );
    ( "pool.determinism",
      [
        Alcotest.test_case "Fig 9.2 job set" `Slow test_lebench_matrix_deterministic;
        Alcotest.test_case "Fig 9.3 job set" `Slow test_apps_matrix_deterministic;
        Alcotest.test_case "counters and fences" `Slow test_counters_and_fences_identical;
        Alcotest.test_case "PoC verdicts" `Slow test_pocs_deterministic;
      ] );
  ]
