(* Crash-safe multi-process execution: the checksummed journal format
   (double-tear recovery, corruption quarantine, old-format rejection,
   merge), the result cache's cross-process lease protocol and write-error
   accounting, and the coordinator/worker pool itself (via fork-spawned
   workers: completion, kill-respawn recovery, budget exhaustion). *)

module Journal = Pv_util.Journal
module Rescache = Pv_util.Rescache
module Procpool = Pv_util.Procpool
module Transport = Pv_util.Transport
module Checksum = Pv_util.Checksum

let check = Alcotest.check

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let temp_path prefix suffix =
  let p = Filename.temp_file prefix suffix in
  Sys.remove p;
  p

let with_journal f =
  let path = temp_path "pv_procpool" ".journal" in
  let rm p = if Sys.file_exists p then Sys.remove p in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      rm (path ^ ".quarantine"))
    (fun () -> f path)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_path "pv_procpool" ".d" in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* --- checksummed journal: tear recovery --------------------------------- *)

let test_double_tear_recovery () =
  (* Kill mid-append, resume, kill mid-append again, resume: the second
     resume must see every record the first resume wrote.  This is the PR 3
     truncate-fix regression guard, replayed against the checksummed
     format with real torn frames (append_torn = header + half payload,
     exactly what a mid-append SIGKILL leaves). *)
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.append w ~key:"b" 2;
      Journal.append_torn w ~key:"c" 3;
      Journal.close w;
      (* first resume: recovery truncates the tear, then writes c and tears d *)
      let w = Journal.open_writer path in
      Journal.append w ~key:"c" 3;
      Journal.append_torn w ~key:"d" 4;
      Journal.close w;
      (* second resume: must see a, b AND the c the first resume wrote *)
      check
        Alcotest.(list (pair string int))
        "second resume sees everything the first resume wrote"
        [ ("a", 1); ("b", 2); ("c", 3) ]
        (Journal.load path);
      let w = Journal.open_writer path in
      Journal.append w ~key:"d" 4;
      Journal.close w;
      check
        Alcotest.(list (pair string int))
        "post-second-resume appends land cleanly"
        [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]
        (Journal.load path))

let test_quarantine_preserves_torn_bytes () =
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.append_torn w ~key:"b" 2;
      Journal.close w;
      let torn_size = (Unix.stat path).Unix.st_size in
      let w = Journal.open_writer path in
      Journal.close w;
      Alcotest.(check bool) "torn suffix copied to .quarantine" true
        (Sys.file_exists (path ^ ".quarantine"));
      let clean_size = (Unix.stat path).Unix.st_size in
      let quarantined = (Unix.stat (path ^ ".quarantine")).Unix.st_size in
      check Alcotest.int "no byte lost: clean + quarantined = torn file" torn_size
        (clean_size + quarantined))

let test_midfile_bitflip_quarantined () =
  (* The pre-checksum format only detected torn *tails*; a mid-file flip
     that still unmarshalled was served silently.  Now every frame is
     checksummed: a flip invalidates its record and everything after it. *)
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 11;
      Journal.append w ~key:"b" 22;
      Journal.append w ~key:"c" 33;
      Journal.close w;
      let body = read_file path in
      (* flip one payload byte inside the middle record *)
      let pos = String.length body / 2 in
      let b = Bytes.of_string body in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_file path (Bytes.to_string b);
      let loaded : (string * int) list = Journal.load path in
      Alcotest.(check bool) "only a verified prefix survives" true
        (List.length loaded < 3);
      List.iter
        (fun (k, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "surviving record %s is authentic" k)
            true
            (List.mem (k, v) [ ("a", 11); ("b", 22); ("c", 33) ]))
        loaded)

let test_corruption_property =
  (* Flip or truncate random bytes anywhere past the header: recovery must
     never surface a corrupt record — whatever loads is a prefix of what
     was written — and resume_status must never raise. *)
  let gen = QCheck.Gen.(triple (int_range 2 12) (int_range 0 2000) (int_range 0 255)) in
  let arb = QCheck.make gen ~print:(fun (n, pos, x) -> Printf.sprintf "(%d,%d,%d)" n pos x) in
  let prop (n, pos_seed, flip) =
    let path = temp_path "pv_jprop" ".journal" in
    Fun.protect
      ~finally:(fun () ->
        (try Sys.remove path with Sys_error _ -> ());
        try Sys.remove (path ^ ".quarantine") with Sys_error _ -> ())
      (fun () ->
        let written = List.init n (fun i -> (Printf.sprintf "cell/%d" i, i * 7)) in
        let w = Journal.open_writer path in
        List.iter (fun (k, v) -> Journal.append w ~key:k v) written;
        Journal.close w;
        let body = read_file path in
        let len = String.length body in
        let pos = String.length Journal.magic + (pos_seed mod max 1 (len - 8)) in
        let pos = min pos (len - 1) in
        (if flip mod 2 = 0 then begin
           (* bit damage *)
           let b = Bytes.of_string body in
           Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor max 1 (flip lsr 1)));
           write_file path (Bytes.to_string b)
         end
         else (* torn write: truncate mid-record *)
           write_file path (String.sub body 0 pos));
        let loaded : (string * int) list = Journal.load path in
        let rec is_prefix p l =
          match (p, l) with
          | [], _ -> true
          | x :: p', y :: l' -> x = y && is_prefix p' l'
          | _ :: _, [] -> false
        in
        let status_ok =
          match Journal.resume_status path with
          | Journal.Missing | Journal.Unusable _ -> true
          | Journal.Usable { records; distinct } ->
            records = List.length loaded && distinct <= records
        in
        is_prefix loaded written && status_ok)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random corruption never surfaces a corrupt record"
       ~count:200 arb prop)

let test_old_format_rejected () =
  (* A pre-checksum journal is bare Marshal records; it must be recognized
     by its magic and rejected with a one-line diagnostic, not misparsed. *)
  with_journal (fun path ->
      write_file path (Marshal.to_string ("key", 1) [] ^ Marshal.to_string ("k2", 2) []);
      (match Journal.load path with
      | (_ : (string * int) list) -> Alcotest.fail "old format must not load"
      | exception Journal.Incompatible msg ->
        Alcotest.(check bool)
          (Printf.sprintf "load diagnostic names the old format: %s" msg)
          true
          (contains ~sub:"pre-checksum" msg));
      (match Journal.open_writer path with
      | (_ : Journal.writer) -> Alcotest.fail "old format must not open for append"
      | exception Journal.Incompatible _ -> ());
      match Journal.resume_status path with
      | Journal.Unusable why ->
        Alcotest.(check bool) "preflight diagnostic names the old format" true
          (contains ~sub:"pre-checksum" why)
      | _ -> Alcotest.fail "old format must be Unusable for --resume")

let test_not_a_journal_rejected () =
  with_journal (fun path ->
      write_file path "{\"this\": \"is json, not a journal\"}";
      match Journal.resume_status path with
      | Journal.Unusable why ->
        Alcotest.(check bool) "diagnostic names the missing header" true
          (contains ~sub:"not a journal" why)
      | _ -> Alcotest.fail "foreign file must be Unusable")

let test_merge_into () =
  with_journal (fun target ->
      with_journal (fun src1 ->
          with_journal (fun src2 ->
              let w = Journal.open_writer src1 in
              Journal.append w ~key:"s1/a" 1;
              Journal.append w ~key:"s1/b" 2;
              Journal.close w;
              let w = Journal.open_writer src2 in
              Journal.append w ~key:"s2/a" 3;
              Journal.append_torn w ~key:"s2/torn" 4 (* killed mid-append *);
              Journal.close w;
              let w = Journal.open_writer target in
              Journal.append w ~key:"own" 0;
              check Alcotest.int "merged 2 from src1" 2 (Journal.merge_into w src1);
              check Alcotest.int "merged only verified records from src2" 1
                (Journal.merge_into w src2);
              check Alcotest.int "missing source merges nothing" 0
                (Journal.merge_into w "/nonexistent/worker.journal");
              Journal.close w;
              check
                Alcotest.(list (pair string int))
                "raw frame copy, in order"
                [ ("own", 0); ("s1/a", 1); ("s1/b", 2); ("s2/a", 3) ]
                (Journal.load target))))

(* --- rescache: claims and write errors ---------------------------------- *)

let test_claim_release_commit () =
  with_dir (fun dir ->
      let c = Rescache.open_dir dir in
      let lease =
        match Rescache.try_claim c ~key:"cell" with
        | `Claimed l -> l
        | `Busy _ -> Alcotest.fail "first claim must win"
      in
      (match Rescache.try_claim c ~key:"cell" with
      | `Busy (Some pid) -> check Alcotest.int "holder pid recorded" (Unix.getpid ()) pid
      | `Busy None -> Alcotest.fail "lease must record the holder pid"
      | `Claimed _ -> Alcotest.fail "second claim must lose");
      Rescache.release c lease;
      let lease2 =
        match Rescache.try_claim c ~key:"cell" with
        | `Claimed l -> l
        | `Busy _ -> Alcotest.fail "released lease must be claimable"
      in
      Rescache.commit c lease2 99;
      check Alcotest.(option int) "commit stored the value" (Some 99)
        (Rescache.find c ~key:"cell");
      match Rescache.try_claim c ~key:"cell" with
      | `Claimed l -> Rescache.release c l
      | `Busy _ -> Alcotest.fail "commit must release the lease")

let test_stale_lease_broken () =
  (* A lease naming a dead pid is a worker killed mid-compute; it must be
     broken and re-claimed, not honoured forever. *)
  with_dir (fun dir ->
      let c = Rescache.open_dir dir in
      let dead_pid =
        match Unix.fork () with
        | 0 -> Unix._exit 0
        | pid ->
          ignore (Unix.waitpid [] pid);
          pid
      in
      let lease =
        match Rescache.try_claim c ~key:"cell" with
        | `Claimed l -> l
        | `Busy _ -> Alcotest.fail "claim must win on empty dir"
      in
      (* forge the dead holder *)
      let lease_file =
        Sys.readdir dir |> Array.to_list
        |> List.find (fun n -> Filename.check_suffix n ".lease")
      in
      write_file (Filename.concat dir lease_file) (string_of_int dead_pid ^ "\n");
      ignore lease;
      match Rescache.try_claim c ~key:"cell" with
      | `Claimed l -> Rescache.release c l
      | `Busy _ -> Alcotest.fail "dead holder's lease must be broken")

let test_compute_through () =
  with_dir (fun dir ->
      let c = Rescache.open_dir dir in
      let runs = ref 0 in
      let f () = incr runs; 7 in
      let v, how = Rescache.compute_through c ~key:"k" f in
      check Alcotest.int "computed value" 7 v;
      Alcotest.(check bool) "first call computes" true (how = `Computed);
      let v2, how2 = Rescache.compute_through c ~key:"k" f in
      check Alcotest.int "hit value" 7 v2;
      Alcotest.(check bool) "second call hits" true (how2 = `Hit);
      check Alcotest.int "computed exactly once" 1 !runs;
      (* patience: a wedged (live) holder must not deadlock the pool *)
      let lease =
        match Rescache.try_claim c ~key:"slow" with
        | `Claimed l -> l
        | `Busy _ -> Alcotest.fail "claim must win"
      in
      let v3, how3 = Rescache.compute_through ~patience:0.05 ~poll:0.01 c ~key:"slow" f in
      check Alcotest.int "patience exhausted: computed anyway" 7 v3;
      Alcotest.(check bool) "reported as computed" true (how3 = `Computed);
      Rescache.release c lease;
      (* a raising compute releases the lease for the next claimant *)
      (match
         Rescache.compute_through c ~key:"boom" (fun () -> failwith "compute failed")
       with
      | (_ : int * _) -> Alcotest.fail "exception must propagate"
      | exception Failure _ -> ());
      match Rescache.try_claim c ~key:"boom" with
      | `Claimed l -> Rescache.release c l
      | `Busy _ -> Alcotest.fail "failed compute must release its lease")

let test_write_errors_counted () =
  (* A cache that cannot write must degrade (count + warn), not raise and
     not pretend the store happened. *)
  with_dir (fun parent ->
      let dir = Filename.concat parent "cache" in
      let c = Rescache.open_dir dir in
      Rescache.store c ~key:"ok" 1;
      check Alcotest.int "healthy store counted" 1 (Rescache.stats c).Rescache.writes;
      (* break the cache root: replace the directory with a regular file, so
         the temp-file open fails with ENOTDIR even for root *)
      rm_rf dir;
      write_file dir "not a directory";
      Rescache.store c ~key:"fails" 2;
      Rescache.store c ~key:"fails2" 3;
      let s = Rescache.stats c in
      check Alcotest.int "failed stores counted" 2 s.Rescache.write_errors;
      check Alcotest.int "successful writes unchanged" 1 s.Rescache.writes;
      let buf_path = Filename.concat parent "report.txt" in
      Out_channel.with_open_bin buf_path (fun oc -> Rescache.report ~out:oc c);
      Alcotest.(check bool) "report line carries write_errors" true
        (contains ~sub:"write_errors=2" (read_file buf_path)))

(* --- the process pool (fork-spawned workers) ----------------------------- *)

(* A worker body for fork_spawner: journals DOUBLE(value-of-key) for each
   cell, optionally SIGKILLing itself mid-append for chosen (key, attempt)
   pairs — the same realization Supervise uses for --fault kill. *)
let worker_body ~kill_on (ctx : Procpool.ctx) =
  let w = Journal.open_writer ctx.Procpool.journal in
  Procpool.serve ctx ~handle:(fun ~index ~attempt ~key ->
      ignore index;
      let v = 2 * int_of_string (Filename.basename key) in
      if List.mem (key, attempt) kill_on then begin
        Journal.append_torn w ~key v;
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
      end
      else begin
        Journal.append w ~key v;
        Procpool.Done
      end)

let keys_of n = Array.init n (fun i -> Printf.sprintf "cell/%d" i)

let values_from journals =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun j -> List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (Journal.load j))
    journals;
  tbl

let test_pool_completes () =
  with_dir (fun scratch ->
      let keys = keys_of 6 in
      let outcomes, journals, _ =
        Procpool.run_jobs ~workers:3 ~respawns:0 ~retries:0 ~scratch
          ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[])) ~keys ()
      in
      Array.iteri
        (fun i o ->
          match o with
          | Procpool.Completed { attempts } ->
            check Alcotest.int (Printf.sprintf "cell %d one attempt" i) 1 attempts
          | Procpool.Failed { reason; _ } ->
            Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
        outcomes;
      let tbl = values_from journals in
      Array.iteri
        (fun i k ->
          check Alcotest.(option int)
            (Printf.sprintf "value of %s recovered from worker journals" k)
            (Some (2 * i)) (Hashtbl.find_opt tbl k))
        keys)

let test_pool_kill_respawn_recovers () =
  (* Worker SIGKILLs itself mid-append on cell/2's first attempt: the
     coordinator must reap it, respawn into the same journal (recovering
     the torn record), and retry the cell to completion. *)
  with_dir (fun scratch ->
      let keys = keys_of 4 in
      let outcomes, journals, _ =
        Procpool.run_jobs ~workers:2 ~respawns:4 ~retries:1 ~scratch
          ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[ ("cell/2", 0) ]))
          ~keys ()
      in
      (match outcomes.(2) with
      | Procpool.Completed { attempts } ->
        check Alcotest.int "killed cell retried once" 2 attempts
      | Procpool.Failed { reason; _ } ->
        Alcotest.fail (Printf.sprintf "killed cell must recover: %s" reason));
      Array.iteri
        (fun i o ->
          if i <> 2 then
            match o with
            | Procpool.Completed _ -> ()
            | Procpool.Failed { reason; _ } ->
              Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
        outcomes;
      let tbl = values_from journals in
      check Alcotest.(option int) "killed cell's value recovered" (Some 4)
        (Hashtbl.find_opt tbl "cell/2"))

let test_pool_budget_exhaustion_fails_cleanly () =
  (* A persistently killing cell with a tiny respawn budget: the pool must
     fail the cell (and only report transient loss) instead of hanging. *)
  with_dir (fun scratch ->
      let kill_on = List.init 10 (fun a -> ("cell/1", a)) in
      let keys = keys_of 3 in
      let outcomes, journals, _ =
        Procpool.run_jobs ~workers:2 ~respawns:1 ~retries:5 ~scratch
          ~spawn:(Procpool.fork_spawner (worker_body ~kill_on))
          ~keys ()
      in
      (match outcomes.(1) with
      | Procpool.Failed { transient; _ } ->
        Alcotest.(check bool) "loss reported transient" true transient
      | Procpool.Completed _ -> Alcotest.fail "persistently killed cell cannot complete");
      let tbl = values_from journals in
      check Alcotest.(option int) "poisonous cell left no value" None
        (Hashtbl.find_opt tbl "cell/1"))

(* --- the process pool over TCP (standing workers) ------------------------ *)

(* A standing worker for the tests: fork a listener on a kernel-picked
   loopback port whose serving children run the test's own worker body
   (via standing_accept, exactly the production accept/fork/serve loop,
   minus the CLI re-evaluation). *)
let with_tcp_worker ~serve f =
  match Transport.listen_on ~host:"127.0.0.1" ~port:0 with
  | Error e -> Alcotest.fail ("listen_on: " ^ e)
  | Ok (lfd, port) -> (
    match Unix.fork () with
    | 0 ->
      (try Procpool.standing_accept lfd ~serve with _ -> ());
      Unix._exit 0
    | pid ->
      Unix.close lfd;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () -> f port))

(* The production tcp_connector rebuilds the CLI argv; tests have no CLI, so
   this connector sends a HELLO with an empty argv — the serving side below
   ignores it and runs worker_body directly. *)
let test_connector ~wid ~journal ~host ~port ~timeout =
  match Transport.connect ~host ~port ~timeout with
  | Error e -> Error e
  | Ok fd ->
    let hello =
      { Procpool.h_wid = wid; h_sweep = 0; h_journal = journal;
        h_replay = None; h_argv = [] }
    in
    if Transport.send_line fd (Procpool.hello_line hello) then
      Ok (Transport.sock_link ~host ~port fd)
    else begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "handshake write to %s:%d failed" host port)
    end

let body_serve ~kill_on ~conn ~hello =
  worker_body ~kill_on (Procpool.tcp_worker_ctx conn hello)

let test_tcp_pool_completes () =
  (* Mixed pool: one local pipe worker plus one TCP worker must complete a
     sweep with the same outcomes and journal contents as pipes alone. *)
  with_dir (fun scratch ->
      with_tcp_worker ~serve:(body_serve ~kill_on:[]) (fun port ->
          let keys = keys_of 6 in
          let outcomes, journals, dead =
            Procpool.run_jobs
              ~hosts:[ ("127.0.0.1", port) ]
              ~connect:test_connector ~workers:1 ~respawns:0 ~retries:0
              ~scratch
              ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[]))
              ~keys ()
          in
          Alcotest.(check int) "no dead hosts" 0 (List.length dead);
          Array.iteri
            (fun i o ->
              match o with
              | Procpool.Completed { attempts } ->
                check Alcotest.int (Printf.sprintf "cell %d one attempt" i) 1 attempts
              | Procpool.Failed { reason; _ } ->
                Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
            outcomes;
          let tbl = values_from journals in
          Array.iteri
            (fun i k ->
              check Alcotest.(option int)
                (Printf.sprintf "value of %s recovered" k)
                (Some (2 * i)) (Hashtbl.find_opt tbl k))
            keys))

let test_tcp_kill_reconnect_recovers () =
  (* SIGKILL the serving child mid-append over TCP: the coordinator must see
     the reset, arbitrate the inflight cell off the journal (absent = lost
     transient attempt), reconnect to the standing worker, and retry to
     completion — node loss handled exactly like a reaped local corpse. *)
  with_dir (fun scratch ->
      with_tcp_worker ~serve:(body_serve ~kill_on:[ ("cell/2", 0) ]) (fun port ->
          let keys = keys_of 4 in
          let outcomes, journals, dead =
            Procpool.run_jobs
              ~hosts:[ ("127.0.0.1", port) ]
              ~host_respawns:4 ~connect:test_connector ~workers:0 ~respawns:0
              ~retries:1 ~scratch
              ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[]))
              ~keys ()
          in
          Alcotest.(check int) "host survives within budget" 0 (List.length dead);
          (match outcomes.(2) with
          | Procpool.Completed { attempts } ->
            check Alcotest.int "killed cell retried once" 2 attempts
          | Procpool.Failed { reason; _ } ->
            Alcotest.fail (Printf.sprintf "killed cell must recover: %s" reason));
          Array.iteri
            (fun i o ->
              if i <> 2 then
                match o with
                | Procpool.Completed _ -> ()
                | Procpool.Failed { reason; _ } ->
                  Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
            outcomes;
          let tbl = values_from journals in
          check Alcotest.(option int) "killed cell's value recovered" (Some 4)
            (Hashtbl.find_opt tbl "cell/2")))

(* A serving child that journals the cell, writes a torn half-reply ("OK <i>"
   with no terminating newline) and SIGKILLs itself mid-line. *)
let torn_reply_serve ~conn ~hello =
  let ctx = Procpool.tcp_worker_ctx conn hello in
  let w = Journal.open_writer ctx.Procpool.journal in
  output_string ctx.Procpool.reply_out "RDY\n";
  flush ctx.Procpool.reply_out;
  match input_line ctx.Procpool.cmd_in with
  | line -> (
    match String.split_on_char ' ' line with
    | [ "RUN"; idx; _att; hexkey ] ->
      let key = Option.get (Checksum.string_of_hex hexkey) in
      Journal.append w ~key (2 * int_of_string (Filename.basename key));
      Journal.close w;
      output_string ctx.Procpool.reply_out ("OK " ^ idx);
      flush ctx.Procpool.reply_out;
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ())
  | exception End_of_file -> ()

let test_tcp_torn_line_discarded () =
  (* A reply torn mid-line by a dying peer must be discarded, not parsed;
     the journal record it raced with still counts the cell completed on
     its first attempt, and the sweep finishes over fresh connections. *)
  with_dir (fun scratch ->
      with_tcp_worker ~serve:torn_reply_serve (fun port ->
          let keys = keys_of 3 in
          let outcomes, journals, dead =
            Procpool.run_jobs
              ~hosts:[ ("127.0.0.1", port) ]
              ~host_respawns:6 ~connect:test_connector ~workers:0 ~respawns:0
              ~retries:1 ~scratch
              ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[]))
              ~keys ()
          in
          ignore dead;
          Array.iteri
            (fun i o ->
              match o with
              | Procpool.Completed { attempts } ->
                check Alcotest.int
                  (Printf.sprintf "cell %d completed on first attempt via journal" i)
                  1 attempts
              | Procpool.Failed { reason; _ } ->
                Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
            outcomes;
          let tbl = values_from journals in
          Array.iteri
            (fun i k ->
              check Alcotest.(option int)
                (Printf.sprintf "value of %s recovered" k)
                (Some (2 * i)) (Hashtbl.find_opt tbl k))
            keys))

let test_tcp_handshake_timeout_abandons_host () =
  (* A host that accepts TCP connections but never completes the handshake
     (this test binds a listener and never accepts, so connects sit in the
     backlog and RDY never comes) must be abandoned once its budget is
     spent and named in the dead-host report — while the sweep completes
     on the remaining pipe worker. *)
  (* the pipe worker is slowed per cell so cells are still pending when the
     handshake deadline expires — abandonment only happens mid-sweep *)
  let slow_body (ctx : Procpool.ctx) =
    let w = Journal.open_writer ctx.Procpool.journal in
    Procpool.serve ctx ~handle:(fun ~index:_ ~attempt:_ ~key ->
        Unix.sleepf 0.15;
        Journal.append w ~key (2 * int_of_string (Filename.basename key));
        Procpool.Done)
  in
  with_dir (fun scratch ->
      match Transport.listen_on ~host:"127.0.0.1" ~port:0 with
      | Error e -> Alcotest.fail ("listen_on: " ^ e)
      | Ok (lfd, port) ->
        Fun.protect
          ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
          (fun () ->
            let keys = keys_of 4 in
            let outcomes, journals, dead =
              Procpool.run_jobs
                ~hosts:[ ("127.0.0.1", port) ]
                ~host_respawns:0 ~handshake_timeout:0.3 ~connect:test_connector
                ~workers:1 ~respawns:0 ~retries:0 ~scratch
                ~spawn:(Procpool.fork_spawner slow_body)
                ~keys ()
            in
            (match dead with
            | [ d ] ->
              check Alcotest.string "dead host named" "127.0.0.1" d.Procpool.dh_host;
              check Alcotest.int "dead port named" port d.Procpool.dh_port;
              Alcotest.(check bool)
                (Printf.sprintf "reason mentions the handshake: %s" d.Procpool.dh_reason)
                true
                (contains ~sub:"handshake" d.Procpool.dh_reason
                && contains ~sub:"budget exhausted" d.Procpool.dh_reason)
            | ds ->
              Alcotest.fail
                (Printf.sprintf "expected exactly one dead host, got %d" (List.length ds)));
            Array.iteri
              (fun i o ->
                match o with
                | Procpool.Completed _ -> ()
                | Procpool.Failed { reason; _ } ->
                  Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
              outcomes;
            let tbl = values_from journals in
            Array.iteri
              (fun i k ->
                check Alcotest.(option int)
                  (Printf.sprintf "value of %s recovered from pipe worker" k)
                  (Some (2 * i)) (Hashtbl.find_opt tbl k))
              keys))

(* Pipe and TCP transports must yield identical arbitration: same per-cell
   outcomes (constructor and attempt counts) and same recovered values, for
   any single-kill scenario — the node-loss path is the kill path. *)
let outcome_digest (outcomes, journals, _) =
  let outs =
    Array.to_list outcomes
    |> List.map (function
         | Procpool.Completed { attempts } -> `Completed attempts
         | Procpool.Failed { attempts; transient; _ } -> `Failed (attempts, transient))
  in
  let tbl = values_from journals in
  let vals = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  (outs, List.sort compare vals)

let tcp_matches_pipe_prop =
  let gen = QCheck.Gen.(pair (int_range 1 4) (int_range 0 7)) in
  let arb = QCheck.make gen ~print:(fun (n, k) -> Printf.sprintf "(n=%d,k=%d)" n k) in
  let prop (n, kill_seed) =
    let keys = keys_of n in
    let kill_on = [ (Printf.sprintf "cell/%d" (kill_seed mod n), 0) ] in
    let pipe_run =
      with_dir (fun scratch ->
          Procpool.run_jobs ~workers:1 ~respawns:8 ~retries:1 ~scratch
            ~spawn:(Procpool.fork_spawner (worker_body ~kill_on))
            ~keys ())
    in
    let tcp_run =
      with_dir (fun scratch ->
          with_tcp_worker ~serve:(body_serve ~kill_on) (fun port ->
              Procpool.run_jobs
                ~hosts:[ ("127.0.0.1", port) ]
                ~host_respawns:8 ~connect:test_connector ~workers:0 ~respawns:0
                ~retries:1 ~scratch
                ~spawn:(Procpool.fork_spawner (worker_body ~kill_on:[]))
                ~keys ()))
    in
    outcome_digest pipe_run = outcome_digest tcp_run
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"TCP arbitration matches pipe arbitration" ~count:8 arb prop)

let test_drain_timeout_kills_straggler () =
  (* A worker that survives FIN must be killed once the configured drain
     grace expires — promptly, with a warning naming it — instead of
     wedging the coordinator for the default 10 s. *)
  with_dir (fun scratch ->
      let keys = keys_of 2 in
      let stderr_copy = Filename.concat scratch "stderr.txt" in
      let saved = Unix.dup Unix.stderr in
      let fd =
        Unix.openfile stderr_copy [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
      in
      Unix.dup2 fd Unix.stderr;
      Unix.close fd;
      let t0 = Unix.gettimeofday () in
      let outcomes, _, _ =
        Fun.protect
          ~finally:(fun () ->
            flush stderr;
            Unix.dup2 saved Unix.stderr;
            Unix.close saved)
          (fun () ->
            Procpool.run_jobs ~drain_timeout:0.2 ~workers:1 ~respawns:0 ~retries:0
              ~scratch
              ~spawn:
                (Procpool.fork_spawner (fun ctx ->
                     worker_body ~kill_on:[] ctx;
                     Unix.sleep 60))
              ~keys ())
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Array.iteri
        (fun i o ->
          match o with
          | Procpool.Completed _ -> ()
          | Procpool.Failed { reason; _ } ->
            Alcotest.fail (Printf.sprintf "cell %d failed: %s" i reason))
        outcomes;
      Alcotest.(check bool)
        (Printf.sprintf "returned promptly (%.1fs)" elapsed)
        true (elapsed < 5.0);
      Alcotest.(check bool) "warning names the straggler" true
        (contains ~sub:"did not exit within" (read_file stderr_copy)))

let suite =
  [
    ( "journal2.recovery",
      [
        Alcotest.test_case "double-tear recovery" `Quick test_double_tear_recovery;
        Alcotest.test_case "quarantine preserves torn bytes" `Quick
          test_quarantine_preserves_torn_bytes;
        Alcotest.test_case "mid-file bit flip quarantined" `Quick
          test_midfile_bitflip_quarantined;
        test_corruption_property;
      ] );
    ( "journal2.compat",
      [
        Alcotest.test_case "pre-checksum format rejected" `Quick test_old_format_rejected;
        Alcotest.test_case "foreign file rejected" `Quick test_not_a_journal_rejected;
        Alcotest.test_case "merge folds verified records" `Quick test_merge_into;
      ] );
    ( "rescache.claims",
      [
        Alcotest.test_case "claim/release/commit" `Quick test_claim_release_commit;
        Alcotest.test_case "stale lease broken" `Quick test_stale_lease_broken;
        Alcotest.test_case "compute_through protocol" `Quick test_compute_through;
        Alcotest.test_case "write errors counted" `Quick test_write_errors_counted;
      ] );
    ( "procpool",
      [
        Alcotest.test_case "pool completes and values recover" `Quick test_pool_completes;
        Alcotest.test_case "kill, respawn, recover" `Quick test_pool_kill_respawn_recovers;
        Alcotest.test_case "respawn budget exhaustion" `Quick
          test_pool_budget_exhaustion_fails_cleanly;
        Alcotest.test_case "drain timeout kills straggler" `Quick
          test_drain_timeout_kills_straggler;
      ] );
    ( "procpool.tcp",
      [
        Alcotest.test_case "mixed pipe+TCP pool completes" `Quick test_tcp_pool_completes;
        Alcotest.test_case "node kill, reconnect, recover" `Quick
          test_tcp_kill_reconnect_recovers;
        Alcotest.test_case "torn reply line discarded" `Quick test_tcp_torn_line_discarded;
        Alcotest.test_case "handshake timeout abandons host" `Quick
          test_tcp_handshake_timeout_abandons_host;
        tcp_matches_pipe_prop;
      ] );
  ]
