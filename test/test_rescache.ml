(* The persistent content-addressed result cache: digest stability, store/
   find round trips, salt invalidation, corruption recovery, and the
   cold-run/warm-run byte-identity contract through supervised sweeps. *)

module Rescache = Pv_util.Rescache
module Supervise = Pv_experiments.Supervise
module Perf = Pv_experiments.Perf
module Perf_report = Pv_experiments.Perf_report
module Schemes = Pv_experiments.Schemes
module Loadsweep = Pv_experiments.Loadsweep
module Journal = Pv_util.Journal
module Tab = Pv_util.Tab
module Apps = Pv_workloads.Apps
module Lebench = Pv_workloads.Lebench

let check = Alcotest.check

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = Filename.temp_file "pv_rescache" ".d" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir) (fun () -> f dir)

let entries dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare

(* --- the digest --------------------------------------------------------- *)

let test_digest_stability () =
  (* FNV-1a 64 known-answer vectors: entry file names must never drift, or
     every existing cache silently goes cold. *)
  check Alcotest.string "empty string = offset basis" "cbf29ce484222325"
    (Rescache.digest_hex "");
  check Alcotest.string "\"a\"" "af63dc4c8601ec8c" (Rescache.digest_hex "a");
  check Alcotest.string "\"foobar\"" "85944171f73967e8" (Rescache.digest_hex "foobar");
  check Alcotest.string "repeatable" (Rescache.digest_hex "perf/lebench|select")
    (Rescache.digest_hex "perf/lebench|select");
  Alcotest.(check bool) "distinct keys, distinct names" true
    (Rescache.digest_hex "k1" <> Rescache.digest_hex "k2")

(* --- store / find round trips ------------------------------------------- *)

let test_roundtrip () =
  with_cache_dir (fun dir ->
      let c = Rescache.open_dir dir in
      check Alcotest.(option int) "cold miss" None (Rescache.find c ~key:"k1");
      Rescache.store c ~key:"k1" 42;
      check Alcotest.(option int) "hit after store" (Some 42) (Rescache.find c ~key:"k1");
      check Alcotest.(option int) "other key still misses" None (Rescache.find c ~key:"k2");
      let s = Rescache.stats c in
      check Alcotest.int "hits" 1 s.Rescache.hits;
      check Alcotest.int "misses" 2 s.Rescache.misses;
      check Alcotest.int "writes" 1 s.Rescache.writes;
      check Alcotest.int "nothing corrupt" 0 s.Rescache.corrupt_dropped;
      (* persistence: a fresh handle on the same directory serves the entry *)
      let c2 = Rescache.open_dir dir in
      check Alcotest.(option int) "hit across handles" (Some 42) (Rescache.find c2 ~key:"k1"))

let test_store_replaces () =
  with_cache_dir (fun dir ->
      let c = Rescache.open_dir dir in
      Rescache.store c ~key:"k" "old";
      Rescache.store c ~key:"k" "new";
      check Alcotest.(option string) "last store wins" (Some "new") (Rescache.find c ~key:"k");
      check Alcotest.int "one entry file" 1 (List.length (entries dir)))

let test_salt_invalidation () =
  with_cache_dir (fun dir ->
      let a = Rescache.open_dir ~salt:"model-A" dir in
      Rescache.store a ~key:"k" 1;
      (* a different salt addresses a disjoint key space: the entry is
         unreachable, not deleted *)
      let b = Rescache.open_dir ~salt:"model-B" dir in
      check Alcotest.(option int) "other salt misses" None (Rescache.find b ~key:"k");
      let a2 = Rescache.open_dir ~salt:"model-A" dir in
      check Alcotest.(option int) "original salt still hits" (Some 1)
        (Rescache.find a2 ~key:"k"))

let test_eviction_bounds_entries () =
  with_cache_dir (fun dir ->
      let c = Rescache.open_dir ~max_entries:2 dir in
      Rescache.store c ~key:"k1" 1;
      Rescache.store c ~key:"k2" 2;
      Rescache.store c ~key:"k3" 3;
      check Alcotest.int "bounded to max_entries" 2 (List.length (entries dir));
      check Alcotest.int "one eviction counted" 1 (Rescache.stats c).Rescache.evictions)

let test_eviction_equal_mtime_deterministic () =
  (* On a 1-second-granularity filesystem every entry of a fast run carries
     the same mtime, so the victim set must fall back to the digest
     filename — never readdir order.  Force the tie with utimes and check
     the survivors are exactly the lexicographically-largest names. *)
  with_cache_dir (fun dir ->
      let big = Rescache.open_dir dir in
      let keys = [ "k1"; "k2"; "k3"; "k4" ] in
      List.iter (fun k -> Rescache.store big ~key:k 0) keys;
      let old = Unix.time () -. 1000.0 in
      List.iter
        (fun f -> Unix.utimes (Filename.concat dir f) old old)
        (entries dir);
      let tied = List.sort compare (entries dir) in
      check Alcotest.int "four tied entries" 4 (List.length tied);
      (* a fifth store through a bounded handle must evict the three
         smallest-named tied entries: the new entry is newer, and the
         largest tied name wins the in-tie comparison *)
      let c = Rescache.open_dir ~max_entries:2 dir in
      Rescache.store c ~key:"k5" 0;
      let survivors = entries dir in
      check Alcotest.int "bounded to max_entries" 2 (List.length survivors);
      check Alcotest.int "three evictions counted" 3 (Rescache.stats c).Rescache.evictions;
      Alcotest.(check bool) "largest tied name survives" true
        (List.mem (List.nth tied 3) survivors);
      List.iteri
        (fun i f ->
          if i < 3 then
            Alcotest.(check bool)
              (Printf.sprintf "tied entry %d evicted" i)
              false (List.mem f survivors))
        tied)

(* --- corruption recovery ------------------------------------------------ *)

let only_entry dir =
  match entries dir with
  | [ f ] -> Filename.concat dir f
  | es -> Alcotest.fail (Printf.sprintf "expected one cache entry, found %d" (List.length es))

let test_truncated_entry_recomputed () =
  with_cache_dir (fun dir ->
      let c = Rescache.open_dir dir in
      Rescache.store c ~key:"k" (3, "payload");
      let file = only_entry dir in
      let body = In_channel.with_open_bin file In_channel.input_all in
      Out_channel.with_open_bin file (fun ch ->
          Out_channel.output_string ch (String.sub body 0 17));
      check Alcotest.(option (pair int string)) "truncated entry is a miss" None
        (Rescache.find c ~key:"k");
      check Alcotest.int "counted as corrupt" 1 (Rescache.stats c).Rescache.corrupt_dropped;
      check Alcotest.int "damaged file deleted" 0 (List.length (entries dir));
      (* the recompute path: a fresh store makes the key hit again *)
      Rescache.store c ~key:"k" (3, "payload");
      check Alcotest.(option (pair int string)) "recomputed entry hits" (Some (3, "payload"))
        (Rescache.find c ~key:"k"))

let test_bitflipped_entry_recomputed () =
  with_cache_dir (fun dir ->
      let c = Rescache.open_dir dir in
      Rescache.store c ~key:"k" 99;
      let file = only_entry dir in
      let body = In_channel.with_open_bin file In_channel.input_all in
      (* flip one nibble of the hex payload: the checksum must catch it *)
      let marker = "\"payload_hex\": \"" in
      let rec find i =
        if i + String.length marker > String.length body then
          Alcotest.fail "payload_hex field not found"
        else if String.sub body i (String.length marker) = marker then
          i + String.length marker
        else find (i + 1)
      in
      let pos = find 0 in
      let flipped = Bytes.of_string body in
      Bytes.set flipped pos (if Bytes.get flipped pos = '0' then '1' else '0');
      Out_channel.with_open_bin file (fun ch ->
          Out_channel.output_bytes ch flipped);
      check Alcotest.(option int) "bit-flipped entry is a miss, not a wrong value" None
        (Rescache.find c ~key:"k");
      check Alcotest.int "counted as corrupt" 1 (Rescache.stats c).Rescache.corrupt_dropped;
      Rescache.store c ~key:"k" 99;
      check Alcotest.(option int) "recomputed entry hits" (Some 99) (Rescache.find c ~key:"k"))

(* --- supervised sweeps: dedup, CACHED, journaling ----------------------- *)

let test_dedup_runs_once () =
  (* Three cells declaring the same canonical descriptor are one simulation:
     the representative runs, the rest alias its value — with or without a
     cache directory configured. *)
  let runs = Atomic.make 0 in
  let cell k =
    Supervise.cell ~cache:"dup|desc" k (fun ~fuel:_ ->
        Atomic.incr runs;
        7)
  in
  let sweep =
    Supervise.run ~config:{ Supervise.default with jobs = 4 } [ cell "a"; cell "b"; cell "c" ]
  in
  check Alcotest.int "one execution" 1 (Atomic.get runs);
  check Alcotest.int "executed" 1 sweep.Supervise.executed;
  check Alcotest.int "deduped" 2 sweep.Supervise.deduped;
  check
    Alcotest.(list (pair string (option int)))
    "every alias reports the representative's value"
    [ ("a", Some 7); ("b", Some 7); ("c", Some 7) ]
    sweep.Supervise.results

let test_sweep_cold_then_warm () =
  with_cache_dir (fun dir ->
      let runs = Atomic.make 0 in
      let cells () =
        List.init 3 (fun i ->
            Supervise.cell
              ~cache:(Printf.sprintf "sq|seed=%d" i)
              (Printf.sprintf "sq/%d" i)
              (fun ~fuel:_ ->
                Atomic.incr runs;
                i * i))
      in
      let run () =
        Supervise.run
          ~config:{ Supervise.default with cache = Some (Rescache.open_dir dir) }
          (cells ())
      in
      let cold = run () in
      check Alcotest.int "cold run executes everything" 3 cold.Supervise.executed;
      check Alcotest.int "cold run hits nothing" 0 cold.Supervise.cached;
      let warm = run () in
      check Alcotest.int "warm run executes nothing" 0 warm.Supervise.executed;
      check Alcotest.int "warm run all CACHED" 3 warm.Supervise.cached;
      check Alcotest.int "simulations ran once in total" 3 (Atomic.get runs);
      Alcotest.(check bool) "identical results" true
        (cold.Supervise.results = warm.Supervise.results);
      (* provenance shows up in the stderr report, not in the results *)
      let report_file = Filename.temp_file "pv_rescache" ".report" in
      Fun.protect
        ~finally:(fun () -> Sys.remove report_file)
        (fun () ->
          let out = open_out report_file in
          Supervise.report ~out ~label:"sq" warm;
          close_out out;
          let text = In_channel.with_open_bin report_file In_channel.input_all in
          Alcotest.(check bool)
            (Printf.sprintf "report names the cache hits: %s" (String.trim text))
            true
            (contains ~sub:"3 CACHED" text && contains ~sub:"0 executed" text)))

let test_cache_hits_are_journaled () =
  (* A warm run with a checkpoint must journal its cache hits, so a later
     --resume works even with the cache gone. *)
  with_cache_dir (fun dir ->
      let path = Filename.temp_file "pv_rescache" ".journal" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let cells () =
            List.init 2 (fun i ->
                Supervise.cell
                  ~cache:(Printf.sprintf "jc|%d" i)
                  (Printf.sprintf "jc/%d" i)
                  (fun ~fuel:_ -> i + 10))
          in
          let cache () = Some (Rescache.open_dir dir) in
          ignore (Supervise.run ~config:{ Supervise.default with cache = cache () } (cells ()));
          let warm =
            Supervise.run
              ~config:{ Supervise.default with cache = cache (); checkpoint = Some path }
              (cells ())
          in
          check Alcotest.int "warm run all CACHED" 2 warm.Supervise.cached;
          (* resume with no cache configured: served from the journal *)
          let resumed =
            Supervise.run
              ~config:{ Supervise.default with checkpoint = Some path; resume = true }
              (cells ())
          in
          check Alcotest.int "resume restores the cached cells" 2 resumed.Supervise.restored;
          check Alcotest.int "resume executes nothing" 0 resumed.Supervise.executed;
          Alcotest.(check bool) "same results" true
            (warm.Supervise.results = resumed.Supervise.results)))

(* --- the acceptance contract: cold and warm runs are byte-identical ----- *)

let test_perf_cold_warm_byte_identical () =
  (* One real perf config, cold at -j1 then warm at -j4: the warm run must
     simulate nothing and both the figure and the metrics JSON must be
     byte-identical — cache keys are stable across worker counts. *)
  with_cache_dir (fun dir ->
      let tests = [ Lebench.find "select" ] in
      let variants = [ Schemes.unsafe; Schemes.perspective ] in
      let labels = List.map (fun v -> v.Schemes.label) variants in
      let names = List.map (fun (t : Lebench.test) -> t.Lebench.name) tests in
      let width = List.length variants in
      let cells () = Perf.lebench_cells ~scale:0.2 ~tests ~variants () in
      let render sweep =
        Tab.to_string
          (Perf_report.fig_lebench_partial ~labels (Perf.matrix_of_sweep ~names ~width sweep))
      in
      let json sweep =
        Supervise.render_json
          [ Supervise.export ~metrics_of:(fun r -> r.Perf.metrics) ~label:"lebench" sweep ]
      in
      let cold =
        Supervise.run
          ~config:{ Supervise.default with jobs = 1; cache = Some (Rescache.open_dir dir) }
          (cells ())
      in
      check Alcotest.int "cold: everything executed" 2 cold.Supervise.executed;
      check Alcotest.int "cold: nothing cached" 0 cold.Supervise.cached;
      let rc = Rescache.open_dir dir in
      let warm =
        Supervise.run ~config:{ Supervise.default with jobs = 4; cache = Some rc } (cells ())
      in
      check Alcotest.int "warm: zero simulations" 0 warm.Supervise.executed;
      check Alcotest.int "warm: all CACHED" 2 warm.Supervise.cached;
      check Alcotest.int "warm handle saw two hits" 2 (Rescache.stats rc).Rescache.hits;
      check Alcotest.string "figure bytes: cold -j1 = warm -j4" (render cold) (render warm);
      check Alcotest.string "metrics JSON bytes: cold = warm" (json cold) (json warm))

let test_loadsweep_cold_warm_byte_identical () =
  (* The fig-9.3-tail path: both phases (service-cal and service points) are
     cacheable, so a warm run recalibrates nothing and reproduces the tables
     byte-for-byte. *)
  with_cache_dir (fun dir ->
      let apps = [ Apps.redis ] in
      let variants = [ Schemes.unsafe; Schemes.fence ] in
      let labels = List.map (fun v -> v.Schemes.label) variants in
      let loads = [ 0.5; 1.2 ] in
      let run jobs =
        Loadsweep.run
          ~config:{ Supervise.default with jobs; cache = Some (Rescache.open_dir dir) }
          ~points:2 ~requests:200 ~loads ~apps ~variants ()
      in
      let render (o : Loadsweep.outcome) =
        Tab.to_string
          (Loadsweep.table ~requests:200 ~apps ~labels ~loads o.Loadsweep.point_sweep)
      in
      let cold = run 2 in
      check Alcotest.int "cold: calibrations executed" 2
        cold.Loadsweep.cal_sweep.Supervise.executed;
      let warm = run 1 in
      check Alcotest.int "warm: calibrations all CACHED" 2
        warm.Loadsweep.cal_sweep.Supervise.cached;
      check Alcotest.int "warm: points all CACHED" 4 warm.Loadsweep.point_sweep.Supervise.cached;
      check Alcotest.int "warm: zero simulations" 0
        (warm.Loadsweep.cal_sweep.Supervise.executed
        + warm.Loadsweep.point_sweep.Supervise.executed);
      check Alcotest.string "load-latency table bytes: cold = warm" (render cold) (render warm);
      check Alcotest.string "metrics JSON bytes: cold = warm"
        (Supervise.render_json (Loadsweep.exports cold))
        (Supervise.render_json (Loadsweep.exports warm)))

let suite =
  [
    ( "rescache.digest",
      [ Alcotest.test_case "FNV-1a 64 known answers" `Quick test_digest_stability ] );
    ( "rescache.store",
      [
        Alcotest.test_case "store/find round-trip" `Quick test_roundtrip;
        Alcotest.test_case "store replaces" `Quick test_store_replaces;
        Alcotest.test_case "salt invalidation" `Quick test_salt_invalidation;
        Alcotest.test_case "eviction bounds entries" `Quick test_eviction_bounds_entries;
        Alcotest.test_case "equal-mtime eviction is deterministic" `Quick
          test_eviction_equal_mtime_deterministic;
      ] );
    ( "rescache.corruption",
      [
        Alcotest.test_case "truncated entry recomputed" `Quick test_truncated_entry_recomputed;
        Alcotest.test_case "bit-flipped entry recomputed" `Quick
          test_bitflipped_entry_recomputed;
      ] );
    ( "rescache.supervise",
      [
        Alcotest.test_case "in-run dedup runs once" `Quick test_dedup_runs_once;
        Alcotest.test_case "cold then warm sweep" `Quick test_sweep_cold_then_warm;
        Alcotest.test_case "cache hits are journaled" `Quick test_cache_hits_are_journaled;
      ] );
    ( "rescache.acceptance",
      [
        Alcotest.test_case "perf: cold -j1 = warm -j4, zero simulation" `Slow
          test_perf_cold_warm_byte_identical;
        Alcotest.test_case "loadsweep: cold = warm, zero simulation" `Slow
          test_loadsweep_cold_warm_byte_identical;
      ] );
  ]
