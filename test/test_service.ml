(* The request-serving subsystem: arrival determinism and common random
   numbers, the bounded-queue server model, calibrated cost models, and the
   Loadsweep experiment's determinism / fault / resume contracts. *)

module Arrivals = Pv_service.Arrivals
module Latency = Pv_service.Latency
module Server = Pv_service.Server
module Costmodel = Pv_service.Costmodel
module Loadsweep = Pv_experiments.Loadsweep
module Supervise = Pv_experiments.Supervise
module Schemes = Pv_experiments.Schemes
module Apps = Pv_workloads.Apps
module Fault = Pv_util.Fault
module Stats = Pv_util.Stats
module Tab = Pv_util.Tab

let check = Alcotest.check

let with_journal f =
  let path = Filename.temp_file "pv_service" ".journal" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* --- arrivals --------------------------------------------------------- *)

let test_arrivals_deterministic () =
  let a = Arrivals.times ~seed:7 ~mean:1000.0 ~n:200 in
  let b = Arrivals.times ~seed:7 ~mean:1000.0 ~n:200 in
  Alcotest.(check bool) "same seed, same times" true (a = b);
  let c = Arrivals.times ~seed:8 ~mean:1000.0 ~n:200 in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Array.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (t > a.(i - 1)))
    a

let test_arrivals_crn_scaling () =
  (* Common random numbers: sample_exp scales a fixed uniform by the mean,
     so halving the mean compresses the same arrival pattern by 2. *)
  let slow = Arrivals.times ~seed:11 ~mean:2000.0 ~n:500 in
  let fast = Arrivals.times ~seed:11 ~mean:1000.0 ~n:500 in
  Array.iteri
    (fun i t ->
      let err = abs_float (t -. (2.0 *. fast.(i))) in
      Alcotest.(check bool) "slow = 2 x fast" true (err <= 1e-9 *. t))
    slow

let test_arrivals_rejects_bad_mean () =
  Alcotest.check_raises "zero mean" (Invalid_argument "Arrivals.create: mean inter-arrival must be positive")
    (fun () -> ignore (Arrivals.create ~seed:1 ~mean:0.0));
  Alcotest.check_raises "negative mean"
    (Invalid_argument "Arrivals.create: mean inter-arrival must be positive") (fun () ->
      ignore (Arrivals.create ~seed:1 ~mean:(-5.0)))

(* --- latency recorder ------------------------------------------------- *)

let test_latency_matches_stats () =
  let t = Latency.create () in
  let xs = [ 50.0; 15.0; 35.0; 40.0; 20.0 ] in
  List.iter (Latency.observe t) xs;
  check Alcotest.int "count" 5 (Latency.count t);
  check (Alcotest.float 1e-9) "mean" (Stats.mean xs) (Latency.mean t);
  check (Alcotest.float 1e-9) "max" 50.0 (Latency.max_value t);
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%.1f matches Stats.percentile" p)
        (Stats.percentile xs ~p) (Latency.percentile t ~p))
    [ 0.0; 50.0; 95.0; 99.0; 100.0 ];
  (* observing after a percentile query must pick up the new sample *)
  Latency.observe t 1000.0;
  check (Alcotest.float 1e-9) "p100 after new observation" 1000.0
    (Latency.percentile t ~p:100.0)

(* --- server ----------------------------------------------------------- *)

let test_server_fifo_and_shed () =
  (* One core, bound 2: arrival 0 is in service (completes at 10), arrival 1
     queues behind it (completes at 20), arrival 2 finds the queue full and
     is shed. *)
  let r =
    Server.simulate
      ~config:{ Server.cores = 1; queue_bound = 2; dispatch = Server.Round_robin }
      ~arrivals:[| 0.0; 1.0; 2.0 |]
      ~service:(fun _ -> 10.0)
      ()
  in
  check Alcotest.int "offered" 3 r.Server.offered;
  check Alcotest.int "served" 2 r.Server.served;
  check Alcotest.int "shed" 1 r.Server.shed;
  check (Alcotest.float 1e-9) "horizon" 20.0 r.Server.horizon;
  check (Alcotest.float 1e-9) "first sojourn" 10.0 (Latency.percentile r.Server.latency ~p:0.0);
  check (Alcotest.float 1e-9) "queued sojourn" 19.0 (Latency.percentile r.Server.latency ~p:100.0);
  check (Alcotest.float 1e-9) "shed fraction" (1.0 /. 3.0) (Server.shed_fraction r)

let test_server_jsq_balances () =
  (* Four simultaneous arrivals on two cores: JSQ alternates cores (ties to
     the lowest index), so both serve two. *)
  let r =
    Server.simulate
      ~config:{ Server.cores = 2; queue_bound = 8; dispatch = Server.Join_shortest_queue }
      ~arrivals:[| 0.0; 0.0; 0.0; 0.0 |]
      ~service:(fun _ -> 10.0)
      ()
  in
  check Alcotest.int "served" 4 r.Server.served;
  check Alcotest.(array int) "balanced" [| 2; 2 |] r.Server.per_core_served

let test_server_validates_inputs () =
  let service _ = 1.0 in
  Alcotest.check_raises "unsorted arrivals"
    (Invalid_argument "Server.simulate: arrivals must be ascending") (fun () ->
      ignore (Server.simulate ~arrivals:[| 1.0; 0.0 |] ~service ()));
  Alcotest.check_raises "bad service time"
    (Invalid_argument "Server.simulate: service times must be positive") (fun () ->
      ignore (Server.simulate ~arrivals:[| 0.0 |] ~service:(fun _ -> 0.0) ()));
  Alcotest.check_raises "bad cores"
    (Invalid_argument "Server.simulate: cores must be positive") (fun () ->
      ignore
        (Server.simulate
           ~config:{ Server.default_config with Server.cores = 0 }
           ~arrivals:[| 0.0 |] ~service ()))

let test_server_queue_bound_zero_sheds_everything () =
  (* Queue bound 0 is the degenerate-but-legal overload limit: every arrival
     is shed, nothing is served, and the empty latency recorder must surface
     as None percentiles rather than a crash. *)
  let r =
    Server.simulate
      ~config:{ Server.cores = 1; queue_bound = 0; dispatch = Server.Round_robin }
      ~arrivals:[| 0.0; 1.0; 2.0 |]
      ~service:(fun _ -> 10.0)
      ()
  in
  check Alcotest.int "served" 0 r.Server.served;
  check Alcotest.int "all shed" 3 r.Server.shed;
  check (Alcotest.float 1e-9) "shed fraction one" 1.0 (Server.shed_fraction r);
  check (Alcotest.float 1e-9) "zero goodput" 0.0 (Server.goodput_rps r);
  check Alcotest.int "empty recorder" 0 (Latency.count r.Server.latency);
  check
    Alcotest.(option (float 1e-9))
    "p99 of nothing is None" None
    (Latency.percentile_opt r.Server.latency ~p:99.0)

let test_server_queue_bound_one_overload () =
  (* Bound 1 under a simultaneous burst: the first arrival occupies the one
     slot; the rest find it full and shed. *)
  let r =
    Server.simulate
      ~config:{ Server.cores = 1; queue_bound = 1; dispatch = Server.Round_robin }
      ~arrivals:[| 0.0; 0.0; 0.0; 0.0 |]
      ~service:(fun _ -> 10.0)
      ()
  in
  check Alcotest.int "one served" 1 r.Server.served;
  check Alcotest.int "rest shed" 3 r.Server.shed;
  check
    Alcotest.(option (float 1e-9))
    "survivor's sojourn" (Some 10.0)
    (Latency.percentile_opt r.Server.latency ~p:100.0)

let test_server_negative_queue_bound_rejected () =
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Server.simulate: queue_bound must be non-negative") (fun () ->
      ignore
        (Server.simulate
           ~config:{ Server.default_config with Server.queue_bound = -1 }
           ~arrivals:[| 0.0 |]
           ~service:(fun _ -> 1.0)
           ()))

let test_dispatch_parse () =
  Alcotest.(check bool) "rr" true (Server.dispatch_of_string "rr" = Ok Server.Round_robin);
  Alcotest.(check bool) "jsq" true
    (Server.dispatch_of_string "JSQ" = Ok Server.Join_shortest_queue);
  Alcotest.(check bool) "junk rejected" true
    (match Server.dispatch_of_string "fifo" with Error _ -> true | Ok _ -> false)

(* A synthetic cost model (no cycle-level runs) for queueing-shape tests. *)
let synthetic ~app ~scheme ~mean =
  {
    Costmodel.app;
    scheme;
    samples = [| 0.8 *. mean; 0.9 *. mean; mean; 1.1 *. mean; 1.2 *. mean |];
    mean_cycles = mean;
  }

let simulate_load ~cores ~mean ~load ~requests =
  let capacity = float_of_int cores *. 2.0e9 /. mean in
  let rate = load *. capacity in
  let arrivals = Arrivals.times ~seed:3 ~mean:(2.0e9 /. rate) ~n:requests in
  let cm = synthetic ~app:"syn" ~scheme:"UNSAFE" ~mean in
  let rng = Pv_util.Rng.create 17 in
  let service = Array.init requests (fun _ -> Costmodel.sample cm rng) in
  Server.simulate
    ~config:{ Server.cores; queue_bound = 32; dispatch = Server.Round_robin }
    ~arrivals
    ~service:(fun i -> service.(i))
    ()

let test_p99_monotone_and_goodput_bounded () =
  (* The acceptance shape, structurally: with common random numbers across
     loads, p99 never decreases as offered load rises, and past saturation
     goodput stays bounded by capacity while shedding absorbs the excess. *)
  let cores = 2 and mean = 1000.0 and requests = 4000 in
  let capacity = float_of_int cores *. 2.0e9 /. mean in
  let results =
    List.map (fun l -> simulate_load ~cores ~mean ~load:l ~requests)
      [ 0.3; 0.5; 0.7; 0.9; 1.1; 1.3 ]
  in
  let p99s = List.map (fun r -> Latency.percentile r.Server.latency ~p:99.0) results in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "p99 non-decreasing: %s"
       (String.concat " " (List.map (Printf.sprintf "%.0f") p99s)))
    true (monotone p99s);
  List.iter
    (fun r ->
      Alcotest.(check bool) "goodput bounded by capacity" true
        (Server.goodput_rps r <= 1.05 *. capacity))
    results;
  let overloaded = List.nth results 5 in
  Alcotest.(check bool) "overload sheds" true (overloaded.Server.shed > 0);
  let light = List.hd results in
  check Alcotest.int "light load sheds nothing" 0 light.Server.shed

(* --- cost-model calibration (cycle-level, slow) ------------------------ *)

let test_calibrate_orders_schemes () =
  let app = Apps.redis in
  let cal scheme label =
    Costmodel.calibrate ~points:2 ~scheme ~label app
  in
  let unsafe = cal Perspective.Defense.Unsafe "UNSAFE" in
  let fence = cal Perspective.Defense.Fence "FENCE" in
  Array.iter
    (fun s -> Alcotest.(check bool) "samples positive" true (s > 0.0))
    unsafe.Costmodel.samples;
  Alcotest.(check bool)
    (Printf.sprintf "FENCE costs more per request (%.0f vs %.0f cycles)"
       fence.Costmodel.mean_cycles unsafe.Costmodel.mean_cycles)
    true
    (fence.Costmodel.mean_cycles > unsafe.Costmodel.mean_cycles);
  (* determinism: recalibration is bit-identical *)
  let again = cal Perspective.Defense.Unsafe "UNSAFE" in
  Alcotest.(check bool) "recalibration identical" true
    (unsafe.Costmodel.samples = again.Costmodel.samples)

(* --- the Loadsweep experiment ------------------------------------------ *)

let sweep_apps = [ Apps.redis ]
let sweep_variants = [ Schemes.unsafe; Schemes.fence ]
let sweep_labels = List.map (fun v -> v.Schemes.label) sweep_variants
let sweep_loads = [ 0.5; 1.2 ]

let run_sweep ?(config = Supervise.default) () =
  Loadsweep.run ~config ~points:2 ~requests:500 ~loads:sweep_loads ~apps:sweep_apps
    ~variants:sweep_variants ()

let render (o : Loadsweep.outcome) =
  Tab.to_string
    (Loadsweep.table ~requests:500 ~apps:sweep_apps ~labels:sweep_labels ~loads:sweep_loads
       o.Loadsweep.point_sweep)
  ^ Tab.to_string
      (Loadsweep.knee_table ~apps:sweep_apps ~labels:sweep_labels ~loads:sweep_loads
         o.Loadsweep.point_sweep)

let test_loadsweep_deterministic_across_jobs () =
  let serial = run_sweep ~config:{ Supervise.default with jobs = 1 } () in
  let parallel = run_sweep ~config:{ Supervise.default with jobs = 4 } () in
  check Alcotest.string "tables byte-identical for -j1 and -j4" (render serial)
    (render parallel);
  check Alcotest.string "metrics JSON byte-identical"
    (Supervise.render_json (Loadsweep.exports serial))
    (Supervise.render_json (Loadsweep.exports parallel));
  check Alcotest.int "clean exit" 0 (Loadsweep.exit_code serial)

let test_loadsweep_fault_then_resume_converges () =
  (* Crash one point cell (index 2: past the two calibration cells, so the
     fault hits only the point sweep), checkpoint, then resume without the
     fault: the resumed tables must equal an uninterrupted run's bytes. *)
  with_journal (fun path ->
      let fault =
        Fault.plan [ { Fault.index = 2; kind = Fault.Crash; first_attempts = Fault.always } ]
      in
      let faulted =
        run_sweep
          ~config:{ Supervise.default with jobs = 2; fault; checkpoint = Some path }
          ()
      in
      check Alcotest.int "one point cell failed" 1
        (Supervise.failed faulted.Loadsweep.point_sweep);
      check Alcotest.int "calibrations survive" 0
        (Supervise.failed faulted.Loadsweep.cal_sweep);
      check Alcotest.int "degraded exit" 1 (Loadsweep.exit_code faulted);
      let sub = "FAILED" in
      let s = render faulted in
      let rec contains i =
        i + String.length sub <= String.length s
        && (String.sub s i (String.length sub) = sub || contains (i + 1))
      in
      Alcotest.(check bool) "degraded table marks the cell" true (contains 0);
      let resumed =
        run_sweep
          ~config:{ Supervise.default with checkpoint = Some path; resume = true }
          ()
      in
      check Alcotest.int "only the failed cell re-ran" 1
        resumed.Loadsweep.point_sweep.Supervise.executed;
      let clean = run_sweep () in
      check Alcotest.string "resumed tables = uninterrupted run" (render clean)
        (render resumed))

let test_loadsweep_missing_unsafe_rejected () =
  Alcotest.check_raises "variants must include UNSAFE"
    (Invalid_argument "Loadsweep: variants must include UNSAFE (the capacity baseline)")
    (fun () ->
      ignore
        (Loadsweep.point_cells ~loads:[ 0.5 ] ~models:[] ~apps:sweep_apps
           ~variants:[ Schemes.fence ] ()))

let test_loadsweep_all_shed_point_degrades () =
  (* An all-shed cell (queue bound 0 under overload) used to crash the
     recorder with "percentile of an empty distribution"; it must degrade to
     a zero-goodput row whose percentiles render as n/a. *)
  let cm =
    Costmodel.calibrate ~points:2 ~scheme:Perspective.Defense.Unsafe ~label:"UNSAFE" Apps.redis
  in
  let cells =
    Loadsweep.point_cells
      ~server:{ Server.cores = 1; queue_bound = 0; dispatch = Server.Round_robin }
      ~requests:200 ~points:2
      ~loads:[ 1.2 ]
      ~models:[ ("service-cal/redis/UNSAFE", Some cm) ]
      ~apps:sweep_apps
      ~variants:[ Schemes.unsafe ]
      ()
  in
  let sweep = Supervise.run cells in
  check Alcotest.int "the cell itself does not fail" 0 (Supervise.failed sweep);
  (match sweep.Supervise.results with
  | [ (_, Some p) ] ->
    check Alcotest.int "nothing served" 0 p.Loadsweep.served;
    check Alcotest.int "everything shed" 200 p.Loadsweep.shed;
    check (Alcotest.float 1e-9) "zero goodput" 0.0 p.Loadsweep.goodput_krps;
    Alcotest.(check bool) "no p99 to report" true (p.Loadsweep.p99_us = None)
  | _ -> Alcotest.fail "expected exactly one surviving point");
  let rendered =
    Tab.to_string
      (Loadsweep.table ~requests:200 ~apps:sweep_apps ~labels:[ "UNSAFE" ] ~loads:[ 1.2 ] sweep)
  in
  let sub = "n/a" in
  let rec contains i =
    i + String.length sub <= String.length rendered
    && (String.sub rendered i (String.length sub) = sub || contains (i + 1))
  in
  Alcotest.(check bool) "table renders n/a percentiles" true (contains 0)

(* --- Apps.scaled (satellite regression) -------------------------------- *)

let test_apps_scaled_rounds () =
  (* 60 * 0.33 = 19.8: truncation used to give 19 requests, biasing scaled
     workloads low; it must round to nearest. *)
  check Alcotest.int "rounds to nearest" 20 (Apps.scaled Apps.httpd ~factor:0.33).Apps.requests;
  check Alcotest.int "exact factor unchanged" 30
    (Apps.scaled Apps.httpd ~factor:0.5).Apps.requests;
  check Alcotest.int "floor of two" 2 (Apps.scaled Apps.httpd ~factor:0.001).Apps.requests;
  Alcotest.check_raises "zero factor" (Invalid_argument "Apps.scaled: factor must be positive")
    (fun () -> ignore (Apps.scaled Apps.httpd ~factor:0.0));
  Alcotest.check_raises "negative factor"
    (Invalid_argument "Apps.scaled: factor must be positive") (fun () ->
      ignore (Apps.scaled Apps.httpd ~factor:(-1.0)))

let suite =
  [
    ( "service.arrivals",
      [
        Alcotest.test_case "deterministic and increasing" `Quick test_arrivals_deterministic;
        Alcotest.test_case "common random numbers scale" `Quick test_arrivals_crn_scaling;
        Alcotest.test_case "bad mean rejected" `Quick test_arrivals_rejects_bad_mean;
      ] );
    ( "service.latency",
      [ Alcotest.test_case "matches Stats.percentile" `Quick test_latency_matches_stats ] );
    ( "service.server",
      [
        Alcotest.test_case "FIFO backlog and shedding" `Quick test_server_fifo_and_shed;
        Alcotest.test_case "JSQ balances ties" `Quick test_server_jsq_balances;
        Alcotest.test_case "input validation" `Quick test_server_validates_inputs;
        Alcotest.test_case "queue bound 0 sheds everything" `Quick
          test_server_queue_bound_zero_sheds_everything;
        Alcotest.test_case "queue bound 1 under a burst" `Quick
          test_server_queue_bound_one_overload;
        Alcotest.test_case "negative queue bound rejected" `Quick
          test_server_negative_queue_bound_rejected;
        Alcotest.test_case "dispatch parsing" `Quick test_dispatch_parse;
        Alcotest.test_case "p99 monotone, goodput bounded" `Quick
          test_p99_monotone_and_goodput_bounded;
      ] );
    ( "service.costmodel",
      [ Alcotest.test_case "calibration orders schemes" `Slow test_calibrate_orders_schemes ] );
    ( "service.loadsweep",
      [
        Alcotest.test_case "byte-identical across -j" `Slow
          test_loadsweep_deterministic_across_jobs;
        Alcotest.test_case "fault, checkpoint, resume, converge" `Slow
          test_loadsweep_fault_then_resume_converges;
        Alcotest.test_case "UNSAFE baseline required" `Quick
          test_loadsweep_missing_unsafe_rejected;
        Alcotest.test_case "all-shed point degrades to n/a" `Slow
          test_loadsweep_all_shed_point_degrades;
      ] );
    ( "service.apps-scaled",
      [ Alcotest.test_case "rounds to nearest" `Quick test_apps_scaled_rounds ] );
  ]
