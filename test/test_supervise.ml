(* The supervision layer: checkpoint journals, fault-degraded sweeps,
   resume convergence, and the cycle-fuel watchdog. *)

module Fault = Pv_util.Fault
module Journal = Pv_util.Journal
module Supervise = Pv_experiments.Supervise
module Perf = Pv_experiments.Perf
module Perf_report = Pv_experiments.Perf_report
module Schemes = Pv_experiments.Schemes
module Tab = Pv_util.Tab
module Lebench = Pv_workloads.Lebench

let check = Alcotest.check

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let temp_journal () =
  let path = Filename.temp_file "pv_supervise" ".journal" in
  Sys.remove path;
  (* Journal.open_writer appends; start from absence like a fresh CLI run. *)
  path

let with_journal f =
  let path = temp_journal () in
  let rm p = if Sys.file_exists p then Sys.remove p in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      (* recovery quarantines torn bytes next to the journal *)
      rm (path ^ ".quarantine"))
    (fun () -> f path)

let square_cells n =
  List.init n (fun i -> Supervise.cell (Printf.sprintf "sq/%d" i) (fun ~fuel:_ -> i * i))

(* --- journal ---------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.append w ~key:"b" 2;
      Journal.append w ~key:"a" 3 (* last write wins *);
      Journal.close w;
      check
        Alcotest.(list (pair string int))
        "records in append order"
        [ ("a", 1); ("b", 2); ("a", 3) ]
        (Journal.load path);
      let tbl = Journal.load_table path in
      check Alcotest.(option int) "last wins" (Some 3) (Hashtbl.find_opt tbl "a");
      check Alcotest.(option int) "b intact" (Some 2) (Hashtbl.find_opt tbl "b"))

let test_journal_torn_tail () =
  (* A run killed mid-append leaves a truncated record; loading must keep the
     valid prefix and drop the tail. *)
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"done" 42;
      Journal.close w;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let ch = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      (* half of a second record *)
      Out_channel.output_string ch (String.sub full 0 (String.length full / 2));
      Out_channel.close ch;
      check
        Alcotest.(list (pair string int))
        "valid prefix survives" [ ("done", 42) ] (Journal.load path))

let test_journal_resume_after_tear () =
  (* The resume-after-tear bug: open_writer used to append blindly after the
     torn bytes, desyncing the Marshal stream so every post-resume record was
     unreadable.  It must truncate to the clean prefix first, keeping the
     pre-kill records AND the post-resume appends loadable. *)
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.append w ~key:"b" 2;
      Journal.close w;
      (* simulate a kill mid-append: a few bytes of a torn third record
         (shorter than a Marshal header, so it can never parse) *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let ch = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      Out_channel.output_string ch (String.sub full 0 7);
      Out_channel.close ch;
      (* resume: the writer truncates the tear, then appends cleanly *)
      let w = Journal.open_writer path in
      Journal.append w ~key:"c" 3;
      Journal.close w;
      check
        Alcotest.(list (pair string int))
        "pre-kill and post-resume records all readable"
        [ ("a", 1); ("b", 2); ("c", 3) ]
        (Journal.load path);
      (* a second resume on the now-clean file is a no-op truncation *)
      let w = Journal.open_writer path in
      Journal.append w ~key:"d" 4;
      Journal.close w;
      check
        Alcotest.(list (pair string int))
        "repeated resumes keep appending"
        [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]
        (Journal.load path))

let test_journal_missing_file () =
  check Alcotest.int "missing journal is empty" 0
    (Hashtbl.length (Journal.load_table "/nonexistent/pv.journal"))

(* --- resume preflight (the CLI's --resume diagnostic) ------------------ *)

let test_resume_status_missing () =
  Alcotest.(check bool) "absent file is Missing" true
    (Journal.resume_status "/nonexistent/pv.journal" = Journal.Missing)

let test_resume_status_empty_file () =
  with_journal (fun path ->
      Out_channel.with_open_bin path (fun _ -> ());
      match Journal.resume_status path with
      | Journal.Unusable why ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic names the emptiness: %s" why)
          true
          (contains ~sub:"empty" why)
      | _ -> Alcotest.fail "zero-byte checkpoint must be Unusable")

let test_resume_status_fully_torn () =
  (* A journal killed during its very first append holds only torn bytes:
     no complete record to resume from, and the preflight must say so
     rather than silently re-running everything. *)
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.close w;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun ch ->
          Out_channel.output_string ch (String.sub full 0 7));
      match Journal.resume_status path with
      | Journal.Unusable why ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic names the tear: %s" why)
          true
          (contains ~sub:"no complete record" why)
      | _ -> Alcotest.fail "fully-torn checkpoint must be Unusable")

let test_resume_status_usable () =
  with_journal (fun path ->
      let w = Journal.open_writer path in
      Journal.append w ~key:"a" 1;
      Journal.append w ~key:"b" 2;
      Journal.append w ~key:"a" 3 (* re-run after an earlier resume *);
      Journal.close w;
      Alcotest.(check bool) "counts records and distinct keys" true
        (Journal.resume_status path = Journal.Usable { records = 3; distinct = 2 }))

(* --- supervised sweeps ------------------------------------------------ *)

let test_sweep_clean () =
  let sweep = Supervise.run (square_cells 6) in
  check Alcotest.int "no failures" 0 (Supervise.failed sweep);
  check Alcotest.int "all executed" 6 sweep.Supervise.executed;
  check Alcotest.int "none restored" 0 sweep.Supervise.restored;
  check
    Alcotest.(list (pair string (option int)))
    "results in declaration order"
    (List.init 6 (fun i -> (Printf.sprintf "sq/%d" i, Some (i * i))))
    sweep.Supervise.results;
  check Alcotest.int "exit code" 0 (Supervise.exit_code [ sweep ])

let test_sweep_degrades_on_fault () =
  let fault = Fault.plan [ { Fault.index = 2; kind = Fault.Crash; first_attempts = Fault.always } ] in
  let config = { Supervise.default with jobs = 2; fault } in
  let sweep = Supervise.run ~config (square_cells 5) in
  check Alcotest.int "one failure" 1 (Supervise.failed sweep);
  check Alcotest.(option (option int)) "failed cell is None" (Some None)
    (List.assoc_opt "sq/2" sweep.Supervise.results);
  check Alcotest.(option (option int)) "neighbours survive" (Some (Some 9))
    (List.assoc_opt "sq/3" sweep.Supervise.results);
  (match sweep.Supervise.failures with
  | [ f ] ->
    check Alcotest.string "failure key" "sq/2" f.Supervise.key;
    Alcotest.(check bool) "reason mentions the injected crash" true
      (String.length f.Supervise.reason > 0)
  | _ -> Alcotest.fail "expected exactly one failure record");
  check Alcotest.int "degraded exit code" 1 (Supervise.exit_code [ sweep ])

let test_sweep_retry_heals_flaky () =
  let fault = Fault.plan [ { Fault.index = 1; kind = Fault.Crash; first_attempts = 1 } ] in
  let config = { Supervise.default with fault; retries = 1 } in
  let sweep = Supervise.run ~config (square_cells 3) in
  check Alcotest.int "no failures after retry" 0 (Supervise.failed sweep);
  check Alcotest.(option (option int)) "flaky cell healed" (Some (Some 1))
    (List.assoc_opt "sq/1" sweep.Supervise.results)

let test_duplicate_keys_rejected () =
  let cells = [ Supervise.cell "dup" (fun ~fuel:_ -> 0); Supervise.cell "dup" (fun ~fuel:_ -> 1) ] in
  Alcotest.check_raises "duplicate keys" (Invalid_argument "Supervise.run: duplicate cell keys")
    (fun () -> ignore (Supervise.run cells))

let test_checkpoint_resume_roundtrip () =
  with_journal (fun path ->
      (* First run: cell 3 crashes persistently; the other five checkpoint. *)
      let fault = Fault.plan [ { Fault.index = 3; kind = Fault.Crash; first_attempts = Fault.always } ] in
      let first =
        Supervise.run
          ~config:{ Supervise.default with jobs = 2; fault; checkpoint = Some path }
          (square_cells 6)
      in
      check Alcotest.int "first run fails one cell" 1 (Supervise.failed first);
      (* Resume without the fault: only the failed cell re-runs. *)
      let resumed =
        Supervise.run
          ~config:{ Supervise.default with checkpoint = Some path; resume = true }
          (square_cells 6)
      in
      check Alcotest.int "five restored" 5 resumed.Supervise.restored;
      check Alcotest.int "one executed" 1 resumed.Supervise.executed;
      check Alcotest.int "resumed run clean" 0 (Supervise.failed resumed);
      let clean = Supervise.run (square_cells 6) in
      Alcotest.(check bool) "resumed results converge to the uninterrupted run" true
        (resumed.Supervise.results = clean.Supervise.results))

let test_resume_without_journal_runs_everything () =
  let config = { Supervise.default with checkpoint = None; resume = true } in
  let sweep = Supervise.run ~config (square_cells 4) in
  check Alcotest.int "nothing restored" 0 sweep.Supervise.restored;
  check Alcotest.int "everything executed" 4 sweep.Supervise.executed

(* --- the cycle-fuel watchdog ------------------------------------------ *)

let test_watchdog_fires_on_starved_fuel () =
  (* A real (scaled-down) simulation with a tiny cycle budget must end in
     the structured timeout, not a hang or an unstructured error. *)
  match Perf.run_lebench ~scale:0.2 ~fuel:2_000 Schemes.perspective (Lebench.find "select") with
  | _ -> Alcotest.fail "expected Run_timeout"
  | exception Pv_sim.Machine.Run_timeout { cycles; _ } ->
    check Alcotest.int "watchdog fired at the budget" 2_000 cycles

let test_livelock_fault_hits_watchdog () =
  (* A Livelock-faulted cell is starved of fuel by the supervisor and must
     degrade to a per-cell failure whose reason is the watchdog timeout. *)
  let fault = Fault.plan [ { Fault.index = 0; kind = Fault.Livelock; first_attempts = Fault.always } ] in
  let config = { Supervise.default with fault; livelock_fuel = 2_000 } in
  let cells =
    Perf.lebench_cells ~scale:0.2 ~tests:[ Lebench.find "select" ]
      ~variants:[ Schemes.unsafe ] ()
  in
  let sweep = Supervise.run ~config cells in
  match sweep.Supervise.failures with
  | [ f ] ->
    Alcotest.(check bool)
      (Printf.sprintf "reason is a watchdog timeout: %s" f.Supervise.reason)
      true
      (contains ~sub:"watchdog timeout" f.Supervise.reason)
  | _ -> Alcotest.fail "expected exactly one livelocked failure"

(* --- the acceptance scenario at the library level --------------------- *)

let test_perf_sweep_fault_then_resume_converges () =
  (* Fault-injected perf sweep (one crashed cell, one livelocked cell) with a
     checkpoint, then a resume: the resumed figure must be byte-identical to
     an uninterrupted serial run's. *)
  with_journal (fun path ->
      let tests = [ Lebench.find "select" ] in
      let variants = [ Schemes.unsafe; Schemes.fence; Schemes.perspective ] in
      let labels = List.map (fun v -> v.Schemes.label) variants in
      let names = List.map (fun (t : Lebench.test) -> t.Lebench.name) tests in
      let width = List.length variants in
      let cells () = Perf.lebench_cells ~scale:0.2 ~tests ~variants () in
      let render sweep =
        Tab.to_string
          (Perf_report.fig_lebench_partial ~labels (Perf.matrix_of_sweep ~names ~width sweep))
      in
      let fault =
        Fault.plan
          [
            { Fault.index = 1; kind = Fault.Livelock; first_attempts = Fault.always };
            { Fault.index = 2; kind = Fault.Crash; first_attempts = Fault.always };
          ]
      in
      let faulted =
        Supervise.run
          ~config:{ Supervise.default with jobs = 2; fault; checkpoint = Some path; livelock_fuel = 2_000 }
          (cells ())
      in
      check Alcotest.int "two cells failed" 2 (Supervise.failed faulted);
      Alcotest.(check bool) "degraded figure marks them" true
        (contains ~sub:"FAILED" (render faulted));
      let resumed =
        Supervise.run
          ~config:{ Supervise.default with checkpoint = Some path; resume = true }
          (cells ())
      in
      check Alcotest.int "only the failed cells re-ran" 2 resumed.Supervise.executed;
      let clean = Supervise.run (cells ()) in
      check Alcotest.string "resumed figure bytes = uninterrupted serial run"
        (render clean) (render resumed))

(* --- telemetry --------------------------------------------------------- *)

module Metrics = Pv_util.Metrics
module Pipeline = Pv_uarch.Pipeline

let get_int snap name =
  match Metrics.find snap name with
  | Some (Metrics.Int v) -> v
  | _ -> Alcotest.fail (Printf.sprintf "missing int metric %S" name)

let test_stall_classes_partition_total () =
  (* The attribution classes must partition the zero-commit cycles exactly:
     every stall cycle lands in exactly one class. *)
  let r = Perf.run_lebench ~scale:0.2 Schemes.perspective (Lebench.find "select") in
  let s = r.Perf.metrics in
  let total = get_int s "pipeline.stall.total" in
  let classes =
    [ "fetch"; "rob_full"; "lsq"; "fence_isv"; "fence_dsv"; "fence_baseline"; "dram"; "exec" ]
  in
  let sum =
    List.fold_left (fun acc c -> acc + get_int s ("pipeline.stall." ^ c)) 0 classes
  in
  Alcotest.(check bool) "some stall cycles observed" true (total > 0);
  check Alcotest.int "classes partition the stall cycles" total sum;
  Alcotest.(check bool) "stalls bounded by total cycles" true
    (total <= get_int s "pipeline.cycles")

let test_metrics_export_deterministic_across_jobs () =
  (* The --metrics contract: for a fixed sweep the exported JSON is
     byte-identical for any worker count (no elapsed passed here; in the CLI
     the elapsed_s line is the single strippable wall-clock member). *)
  let cells () =
    Perf.lebench_cells ~scale:0.2 ~tests:[ Lebench.find "select" ]
      ~variants:[ Schemes.unsafe; Schemes.perspective ] ()
  in
  let export jobs =
    let sweep = Supervise.run ~config:{ Supervise.default with jobs } (cells ()) in
    Supervise.render_json
      [ Supervise.export ~metrics_of:(fun r -> r.Perf.metrics) ~label:"lebench" sweep ]
  in
  let j1 = export 1 and j4 = export 4 in
  check Alcotest.string "-j1 and -j4 exports byte-identical" j1 j4;
  Alcotest.(check bool) "summary histogram present" true
    (contains ~sub:"supervise.cell_cycles" j1);
  Alcotest.(check bool) "stall attribution exported" true
    (contains ~sub:"pipeline.stall.total" j1);
  Alcotest.(check bool) "view-cache counters exported" true
    (contains ~sub:"svcache.dsv.accesses" j1)

let test_event_trace_ring () =
  let traced = Perf.run_lebench ~scale:0.2 ~trace:true Schemes.perspective (Lebench.find "select") in
  let untraced = Perf.run_lebench ~scale:0.2 Schemes.perspective (Lebench.find "select") in
  Alcotest.(check bool) "traced run captured events" true (traced.Perf.events <> []);
  check Alcotest.int "untraced run records nothing" 0 (List.length untraced.Perf.events);
  Alcotest.(check bool) "tracing does not perturb the measurement" true
    (traced.Perf.metrics = untraced.Perf.metrics);
  List.iter
    (fun e ->
      let line = Pipeline.event_to_json e in
      Alcotest.(check bool)
        (Printf.sprintf "event line shape: %s" line)
        true
        (String.length line > 0 && line.[0] = '{' && contains ~sub:"\"cycle\":" line))
    traced.Perf.events;
  let cycles = List.map (fun e -> e.Pipeline.ev_cycle) traced.Perf.events in
  Alcotest.(check bool) "events come out oldest-first" true
    (List.sort compare cycles = cycles)

let suite =
  [
    ( "supervise.journal",
      [
        Alcotest.test_case "append/load round-trip" `Quick test_journal_roundtrip;
        Alcotest.test_case "torn tail dropped" `Quick test_journal_torn_tail;
        Alcotest.test_case "resume-after-tear truncates then appends" `Quick
          test_journal_resume_after_tear;
        Alcotest.test_case "missing file" `Quick test_journal_missing_file;
        Alcotest.test_case "resume preflight: missing" `Quick test_resume_status_missing;
        Alcotest.test_case "resume preflight: zero-byte" `Quick test_resume_status_empty_file;
        Alcotest.test_case "resume preflight: fully torn" `Quick test_resume_status_fully_torn;
        Alcotest.test_case "resume preflight: usable" `Quick test_resume_status_usable;
      ] );
    ( "supervise.sweeps",
      [
        Alcotest.test_case "clean sweep" `Quick test_sweep_clean;
        Alcotest.test_case "fault degrades one cell" `Quick test_sweep_degrades_on_fault;
        Alcotest.test_case "retry heals flaky cell" `Quick test_sweep_retry_heals_flaky;
        Alcotest.test_case "duplicate keys rejected" `Quick test_duplicate_keys_rejected;
        Alcotest.test_case "checkpoint/resume round-trip" `Quick test_checkpoint_resume_roundtrip;
        Alcotest.test_case "resume without journal" `Quick test_resume_without_journal_runs_everything;
      ] );
    ( "supervise.watchdog",
      [
        Alcotest.test_case "starved fuel times out" `Slow test_watchdog_fires_on_starved_fuel;
        Alcotest.test_case "livelock fault hits watchdog" `Slow test_livelock_fault_hits_watchdog;
      ] );
    ( "supervise.telemetry",
      [
        Alcotest.test_case "stall classes partition stall cycles" `Slow
          test_stall_classes_partition_total;
        Alcotest.test_case "metrics export byte-identical across -j" `Slow
          test_metrics_export_deterministic_across_jobs;
        Alcotest.test_case "event trace ring" `Slow test_event_trace_ring;
      ] );
    ( "supervise.acceptance",
      [
        Alcotest.test_case "fault, checkpoint, resume, converge" `Slow
          test_perf_sweep_fault_then_resume_converges;
      ] );
  ]
