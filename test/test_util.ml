(* Unit and property tests for Pv_util: deterministic RNG, statistics,
   bitsets and table rendering. *)

module Rng = Pv_util.Rng
module Stats = Pv_util.Stats
module Bitset = Pv_util.Bitset
module Tab = Pv_util.Tab
module Metrics = Pv_util.Metrics
module Transport = Pv_util.Transport

let check = Alcotest.check

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.bits a) (Rng.bits b)

let test_rng_split () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  let x = Rng.bits child and y = Rng.bits a in
  Alcotest.(check bool) "split streams differ" true (x <> y)

(* Known-answer tests against the published SplitMix64 reference outputs
   (Steele, Lea & Flood; also the Vigna reference implementation).  Values
   are the full unsigned 64-bit words, so compare their decimal renderings. *)
let kat seed expected () =
  let r = Rng.create seed in
  List.iter
    (fun want -> check Alcotest.string "splitmix64 word" want (Printf.sprintf "%Lu" (Rng.int64 r)))
    expected

let test_rng_kat_seed0 =
  kat 0 [ "16294208416658607535"; "7960286522194355700"; "487617019471545679" ]

let test_rng_kat_seed1234567 =
  kat 1234567
    [
      "6457827717110365317";
      "3203168211198807973";
      "9817491932198370423";
      "4593380528125082431";
      "16408922859458223821";
    ]

(* Split independence: draws from a child never perturb the parent's stream,
   and two children split at different points differ from each other. *)
let rng_split_independence_prop =
  QCheck.Test.make ~name:"rng split leaves the parent stream untouched" ~count:100
    QCheck.(pair small_nat small_nat)
    (fun (seed, skip) ->
      let a = Rng.create seed and b = Rng.create seed in
      for _ = 1 to skip do
        ignore (Rng.bits a);
        ignore (Rng.bits b)
      done;
      let child = Rng.split a in
      ignore (Rng.split b);
      (* Drain the child; the parent must continue exactly like its twin. *)
      for _ = 1 to 16 do
        ignore (Rng.bits child)
      done;
      List.init 8 (fun _ -> Rng.bits a) = List.init 8 (fun _ -> Rng.bits b))

let rng_copy_prop =
  QCheck.Test.make ~name:"rng copy is a perfect fork" ~count:100 QCheck.small_nat
    (fun seed ->
      let a = Rng.create seed in
      ignore (Rng.bits a);
      let b = Rng.copy a in
      List.init 16 (fun _ -> Rng.bits a) = List.init 16 (fun _ -> Rng.bits b))

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_in_range () =
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.in_range r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_chance_extremes () =
  let r = Rng.create 3 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0)

let test_rng_chance_rate () =
  let r = Rng.create 4 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_rng_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_pick_weighted_bias () =
  let r = Rng.create 21 in
  let counts = Hashtbl.create 2 in
  for _ = 1 to 10_000 do
    let v = Rng.pick_weighted r [| ("a", 9.0); ("b", 1.0) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  Alcotest.(check bool) "90/10 split approx" true (a > 8_700 && a < 9_300)

let test_shuffle_permutation () =
  let r = Rng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  (* Regression: empty input used to return a silent 0.0, which flowed
     into tables as a fake measurement. *)
  Alcotest.check_raises "empty mean raises"
    (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let test_stats_mean_opt () =
  (match Stats.mean_opt [] with
  | None -> ()
  | Some v -> Alcotest.failf "mean_opt [] = Some %f, expected None" v);
  match Stats.mean_opt [ 1.0; 3.0 ] with
  | Some v -> check (Alcotest.float 1e-9) "mean_opt" 2.0 v
  | None -> Alcotest.fail "mean_opt [1;3] = None"

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_geomean_rejects () =
  let reject name xs =
    Alcotest.check_raises name (Invalid_argument "Stats.geomean: non-positive input")
      (fun () -> ignore (Stats.geomean xs))
  in
  reject "zero" [ 1.0; 0.0; 4.0 ];
  reject "negative" [ 2.0; -3.0 ];
  reject "nan" [ 1.0; Float.nan ]

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant stddev" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "known stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  check (Alcotest.float 1e-9) "singleton stddev" 0.0 (Stats.stddev [ 42.0 ]);
  Alcotest.check_raises "empty stddev raises"
    (Invalid_argument "Stats.stddev: empty list") (fun () ->
      ignore (Stats.stddev []))

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  check (Alcotest.float 0.0) "min" 1.0 lo;
  check (Alcotest.float 0.0) "max" 3.0 hi

let test_stats_overhead () =
  check (Alcotest.float 1e-9) "overhead" 50.0 (Stats.percent_overhead ~baseline:100.0 150.0)

let test_stats_zero_baseline () =
  Alcotest.check_raises "percent_overhead"
    (Invalid_argument "Stats.percent_overhead: zero baseline") (fun () ->
      ignore (Stats.percent_overhead ~baseline:0.0 5.0));
  Alcotest.check_raises "normalized" (Invalid_argument "Stats.normalized: zero baseline")
    (fun () -> ignore (Stats.normalized ~baseline:0.0 5.0))

let test_stats_ratio_pct () =
  check (Alcotest.float 1e-9) "half" 50.0 (Stats.ratio_pct ~num:1 ~den:2);
  check (Alcotest.float 1e-9) "zero num" 0.0 (Stats.ratio_pct ~num:0 ~den:7);
  Alcotest.check_raises "zero den"
    (Invalid_argument "Stats.ratio_pct: zero denominator") (fun () ->
      ignore (Stats.ratio_pct ~num:3 ~den:0))

let pos_floats = QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.001 1000.0))

let stats_geomean_prop =
  QCheck.Test.make ~name:"geomean lies between min and max" ~count:200 pos_floats
    (fun xs ->
      let g = Stats.geomean xs in
      let lo, hi = Stats.min_max xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let stats_geomean_scale_prop =
  QCheck.Test.make ~name:"geomean scales multiplicatively" ~count:200 pos_floats
    (fun xs ->
      let k = 3.0 in
      let scaled = Stats.geomean (List.map (fun x -> k *. x) xs) in
      abs_float (scaled -. (k *. Stats.geomean xs)) < 1e-6 *. (1.0 +. scaled))

let stats_stddev_prop =
  QCheck.Test.make ~name:"stddev is non-negative and shift-invariant" ~count:200 pos_floats
    (fun xs ->
      let s = Stats.stddev xs in
      let shifted = Stats.stddev (List.map (fun x -> x +. 100.0) xs) in
      s >= 0.0 && abs_float (s -. shifted) < 1e-6)

let stats_min_max_prop =
  QCheck.Test.make ~name:"min_max brackets every element" ~count:200 pos_floats
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      List.for_all (fun x -> lo <= x && x <= hi) xs)

let stats_mean_prop =
  QCheck.Test.make ~name:"mean of n copies is the value" ~count:200
    QCheck.(pair (float_range 0.5 100.0) (int_range 1 50))
    (fun (v, n) ->
      abs_float (Stats.mean (List.init n (fun _ -> v)) -. v) < 1e-9)

let test_counter () =
  let c = Stats.counter () in
  Stats.add c 2.0;
  Stats.add c 4.0;
  check Alcotest.int "count" 2 (Stats.count c);
  check (Alcotest.float 1e-9) "total" 6.0 (Stats.total c);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.counter_mean c)

let test_counter_moments () =
  let c = Stats.counter () in
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  List.iter (Stats.add c) xs;
  check (Alcotest.float 1e-9) "sum_sq" 232.0 (Stats.counter_sum_sq c);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.counter_min c);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.counter_max c);
  check (Alcotest.float 1e-6) "stddev matches list stddev" (Stats.stddev xs)
    (Stats.counter_stddev c);
  let empty = Stats.counter () in
  check (Alcotest.float 1e-9) "empty stddev" 0.0 (Stats.counter_stddev empty);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.counter_min: empty counter")
    (fun () -> ignore (Stats.counter_min empty));
  Alcotest.check_raises "empty max" (Invalid_argument "Stats.counter_max: empty counter")
    (fun () -> ignore (Stats.counter_max empty))

let test_percentile () =
  let xs = [ 15.0; 20.0; 35.0; 40.0; 50.0 ] in
  check (Alcotest.float 1e-9) "p5 is min" 15.0 (Stats.percentile xs ~p:5.0);
  check (Alcotest.float 1e-9) "p30" 20.0 (Stats.percentile xs ~p:30.0);
  check (Alcotest.float 1e-9) "p40" 20.0 (Stats.percentile xs ~p:40.0);
  check (Alcotest.float 1e-9) "p50" 35.0 (Stats.percentile xs ~p:50.0);
  check (Alcotest.float 1e-9) "p100 is max" 50.0 (Stats.percentile xs ~p:100.0);
  check (Alcotest.float 1e-9) "p0 is min" 15.0 (Stats.percentile xs ~p:0.0);
  check (Alcotest.float 1e-9) "singleton" 7.0 (Stats.percentile [ 7.0 ] ~p:99.0);
  check (Alcotest.float 1e-9) "unsorted input" 35.0
    (Stats.percentile [ 50.0; 15.0; 35.0; 40.0; 20.0 ] ~p:50.0)

let test_percentile_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile [] ~p:50.0));
  Alcotest.check_raises "p > 100" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile [ 1.0 ] ~p:100.5));
  Alcotest.check_raises "p < 0" (Invalid_argument "Stats.percentile: p outside [0,100]")
    (fun () -> ignore (Stats.percentile [ 1.0 ] ~p:(-1.0)))

(* Known-answer tests for the nearest rank, over samples [1.; 2.; ...; n.]
   where the value at rank r is simply [float r].  The p70/n=10 case is the
   bug this PR fixes: the float rank path evaluated 0.7 *. 10. as
   7.000000000000001 and ceiled to rank 8, returning 8.0 instead of 7.0. *)
let test_percentile_kats () =
  let one_to n = List.init n (fun i -> float_of_int (i + 1)) in
  let kat ~p ~n expected_rank =
    check Alcotest.int
      (Printf.sprintf "nearest_rank p%g n=%d" p n)
      expected_rank
      (Stats.nearest_rank ~p ~n);
    check (Alcotest.float 0.0)
      (Printf.sprintf "percentile p%g n=%d" p n)
      (float_of_int expected_rank)
      (Stats.percentile (one_to n) ~p)
  in
  (* n = 3: ceil of 0.75 / 1.5 / 2.1 / 2.7 / 2.97 *)
  kat ~p:25.0 ~n:3 1;
  kat ~p:50.0 ~n:3 2;
  kat ~p:70.0 ~n:3 3;
  kat ~p:90.0 ~n:3 3;
  kat ~p:99.0 ~n:3 3;
  (* n = 10: ceil of 2.5 / 5 / 7 / 9 / 9.9 — p70 is the regression case *)
  kat ~p:25.0 ~n:10 3;
  kat ~p:50.0 ~n:10 5;
  kat ~p:70.0 ~n:10 7;
  kat ~p:90.0 ~n:10 9;
  kat ~p:99.0 ~n:10 10;
  (* n = 100: every rank boundary is exact *)
  kat ~p:25.0 ~n:100 25;
  kat ~p:50.0 ~n:100 50;
  kat ~p:70.0 ~n:100 70;
  kat ~p:90.0 ~n:100 90;
  kat ~p:99.0 ~n:100 99;
  (* fractional percentile as used by the load sweep's p999 column *)
  check Alcotest.int "nearest_rank p99.9 n=1000" 999
    (Stats.nearest_rank ~p:99.9 ~n:1000);
  check Alcotest.int "nearest_rank p99.9 n=10" 10 (Stats.nearest_rank ~p:99.9 ~n:10)

(* The integer rank must agree with exact rational arithmetic
   ceil(p*n/100) for every integer percentile — precisely the cases the
   float path got wrong. *)
let nearest_rank_exact_prop =
  QCheck.Test.make ~name:"nearest_rank matches exact rational ceil for integer p"
    ~count:500
    QCheck.(pair (int_range 0 100) (int_range 1 2000))
    (fun (p, n) ->
      let exact = max 1 (((p * n) + 99) / 100) in
      Stats.nearest_rank ~p:(float_of_int p) ~n = exact)

let percentile_monotone_prop =
  QCheck.Test.make ~name:"percentile is monotone in p and hits min/max" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 40) (float_range (-50.0) 50.0))
        (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      let lo_v = Stats.percentile xs ~p:lo and hi_v = Stats.percentile xs ~p:hi in
      let min_v, max_v = Stats.min_max xs in
      lo_v <= hi_v
      && Stats.percentile xs ~p:0.0 = min_v
      && Stats.percentile xs ~p:100.0 = max_v
      && List.mem lo_v xs)

let percentile_member_prop =
  QCheck.Test.make ~name:"counter min/max agree with percentile extremes" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.1 1000.0))
    (fun xs ->
      let c = Stats.counter () in
      List.iter (Stats.add c) xs;
      Stats.counter_min c = Stats.percentile xs ~p:0.0
      && Stats.counter_max c = Stats.percentile xs ~p:100.0
      && abs_float (Stats.counter_stddev c -. Stats.stddev xs)
         < 1e-6 *. (1.0 +. Stats.stddev xs))

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check Alcotest.int "empty" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  check Alcotest.int "three" 3 (Bitset.count b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Bitset.clear b 63;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 63);
  check Alcotest.int "two" 2 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob set" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b 10)

let test_bitset_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  check Alcotest.(list int) "union" [ 1; 2; 3; 4 ] (Bitset.elements (Bitset.union a b));
  check Alcotest.(list int) "inter" [ 3 ] (Bitset.elements (Bitset.inter a b));
  check Alcotest.(list int) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.inter a b) a)

let test_bitset_copy_isolated () =
  let a = Bitset.of_list 8 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.set b 2;
  Alcotest.(check bool) "original untouched" false (Bitset.mem a 2)

let bitset_prop =
  QCheck.Test.make ~name:"bitset count matches elements"
    ~count:200
    QCheck.(small_list (int_bound 63))
    (fun l ->
      let b = Bitset.of_list 64 l in
      Bitset.count b = List.length (List.sort_uniq compare l))

let bitset_union_prop =
  QCheck.Test.make ~name:"bitset union is commutative and contains both"
    ~count:200
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (l1, l2) ->
      let a = Bitset.of_list 64 l1 and b = Bitset.of_list 64 l2 in
      let u = Bitset.union a b in
      Bitset.equal u (Bitset.union b a) && Bitset.subset a u && Bitset.subset b u)

(* Set-algebra laws against the stdlib integer set as the reference model. *)
module IntSet = Set.Make (Int)

let bitset_pair = QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))

let model_agrees op model (l1, l2) =
  let a = Bitset.of_list 64 l1 and b = Bitset.of_list 64 l2 in
  let sa = IntSet.of_list l1 and sb = IntSet.of_list l2 in
  Bitset.elements (op a b) = IntSet.elements (model sa sb)

let bitset_model_union_prop =
  QCheck.Test.make ~name:"bitset union matches Set.union" ~count:300 bitset_pair
    (model_agrees Bitset.union IntSet.union)

let bitset_model_inter_prop =
  QCheck.Test.make ~name:"bitset inter matches Set.inter" ~count:300 bitset_pair
    (model_agrees Bitset.inter IntSet.inter)

let bitset_model_diff_prop =
  QCheck.Test.make ~name:"bitset diff matches Set.diff" ~count:300 bitset_pair
    (model_agrees Bitset.diff IntSet.diff)

let bitset_model_subset_prop =
  QCheck.Test.make ~name:"bitset subset matches Set.subset" ~count:300 bitset_pair
    (fun (l1, l2) ->
      let a = Bitset.of_list 64 l1 and b = Bitset.of_list 64 l2 in
      Bitset.subset a b = IntSet.subset (IntSet.of_list l1) (IntSet.of_list l2))

let bitset_algebra_prop =
  QCheck.Test.make ~name:"bitset distributivity and De Morgan-ish laws" ~count:300
    QCheck.(triple (small_list (int_bound 63)) (small_list (int_bound 63))
              (small_list (int_bound 63)))
    (fun (l1, l2, l3) ->
      let a = Bitset.of_list 64 l1
      and b = Bitset.of_list 64 l2
      and c = Bitset.of_list 64 l3 in
      (* a ∩ (b ∪ c) = (a ∩ b) ∪ (a ∩ c) *)
      Bitset.equal (Bitset.inter a (Bitset.union b c))
        (Bitset.union (Bitset.inter a b) (Bitset.inter a c))
      (* a \ (b ∪ c) = (a \ b) ∩ (a \ c) *)
      && Bitset.equal (Bitset.diff a (Bitset.union b c))
           (Bitset.inter (Bitset.diff a b) (Bitset.diff a c)))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_tab_render () =
  let t = Tab.create ~title:"T" ~header:[ ("a", Tab.Left); ("b", Tab.Right) ] in
  Tab.row t [ "x"; "1" ];
  Tab.row t [ "yy" ];
  Tab.caption t "some-note";
  let s = Tab.to_string t in
  Alcotest.(check bool) "title" true (contains s "== T ==");
  Alcotest.(check bool) "row padded" true (contains s "yy");
  Alcotest.(check bool) "caption" true (contains s "some-note")

let test_tab_csv () =
  let t = Tab.create ~title:"T" ~header:[ ("a", Tab.Left); ("b", Tab.Right) ] in
  Tab.row t [ "x,1"; "2" ];
  Tab.row t [ "he said \"hi\"" ];
  let csv = Tab.to_csv t in
  Alcotest.(check bool) "header line" true (contains csv "a,b\n");
  Alcotest.(check bool) "comma quoted" true (contains csv "\"x,1\",2");
  Alcotest.(check bool) "quotes doubled" true (contains csv "\"he said \"\"hi\"\"\"")

let test_tab_formats () =
  check Alcotest.string "pct" "3.5%" (Tab.pct 3.5);
  check Alcotest.string "times" "1.57x" (Tab.times 1.57);
  check Alcotest.string "fl" "2.00" (Tab.fl 2.0)

(* --- metrics ----------------------------------------------------------- *)

let test_metrics_counters_and_gauges () =
  let r = Metrics.create () in
  Metrics.incr r "a.count";
  Metrics.incr ~by:4 r "a.count";
  Metrics.set_int r "a.gauge" 7;
  Metrics.set_float r "a.rate" 0.5;
  let s = Metrics.snapshot r in
  check Alcotest.(option bool) "counter" (Some true)
    (Option.map (( = ) (Metrics.Int 5)) (Metrics.find s "a.count"));
  check Alcotest.(option bool) "gauge" (Some true)
    (Option.map (( = ) (Metrics.Int 7)) (Metrics.find s "a.gauge"));
  check Alcotest.(option bool) "float" (Some true)
    (Option.map (( = ) (Metrics.Float 0.5)) (Metrics.find s "a.rate"))

let test_metrics_snapshot_sorted () =
  let r = Metrics.create () in
  List.iter (Metrics.incr r) [ "z.last"; "a.first"; "m.mid" ];
  let names = List.map fst (Metrics.snapshot r) in
  check Alcotest.(list string) "name order" [ "a.first"; "m.mid"; "z.last" ] names

let test_metrics_type_conflicts () =
  let r = Metrics.create () in
  Metrics.incr r "x";
  Alcotest.check_raises "int vs float"
    (Invalid_argument "Metrics: \"x\" already registered with another type")
    (fun () -> Metrics.set_float r "x" 1.0);
  Alcotest.check_raises "int vs hist"
    (Invalid_argument "Metrics: \"x\" already registered with another type")
    (fun () -> Metrics.observe r "x" 1)

let test_metrics_nonfinite_rejected () =
  let r = Metrics.create () in
  Alcotest.check_raises "nan"
    (Invalid_argument "Metrics: \"y\" set to a non-finite float")
    (fun () -> Metrics.set_float r "y" Float.nan)

let test_metrics_hist_bucket_edges () =
  (* bucket 0: v <= 0; bucket i >= 1: [2^(i-1), 2^i - 1]; last absorbs. *)
  check Alcotest.int "nonpositive" 0 (Metrics.bucket_of 0);
  check Alcotest.int "negative" 0 (Metrics.bucket_of (-5));
  check Alcotest.int "one" 1 (Metrics.bucket_of 1);
  check Alcotest.int "two" 2 (Metrics.bucket_of 2);
  check Alcotest.int "three" 2 (Metrics.bucket_of 3);
  check Alcotest.int "four" 3 (Metrics.bucket_of 4);
  check Alcotest.int "seven" 3 (Metrics.bucket_of 7);
  check Alcotest.int "eight" 4 (Metrics.bucket_of 8);
  check Alcotest.int "1023" 10 (Metrics.bucket_of 1023);
  check Alcotest.int "1024" 11 (Metrics.bucket_of 1024);
  check Alcotest.int "overflow capped" (Metrics.nbuckets - 1)
    (Metrics.bucket_of max_int);
  (* bucket_lo inverts the low edge. *)
  check Alcotest.int "lo 0" min_int (Metrics.bucket_lo 0);
  check Alcotest.int "lo 1" 1 (Metrics.bucket_lo 1);
  check Alcotest.int "lo 3" 4 (Metrics.bucket_lo 3);
  for i = 1 to Metrics.nbuckets - 2 do
    check Alcotest.int
      (Printf.sprintf "lo %d is its own bucket" i)
      i
      (Metrics.bucket_of (Metrics.bucket_lo i))
  done

let test_metrics_hist_counts () =
  let r = Metrics.create () in
  Metrics.declare_hist r "h.declared";
  List.iter (Metrics.observe r "h") [ 0; 1; 2; 3; 1000 ];
  let s = Metrics.snapshot r in
  (match Metrics.find s "h" with
  | Some (Metrics.Hist { counts; total; sum }) ->
    check Alcotest.int "total" 5 total;
    check Alcotest.int "sum" 1006 sum;
    check Alcotest.int "bucket 0" 1 counts.(0);
    check Alcotest.int "bucket 1" 1 counts.(1);
    check Alcotest.int "bucket 2" 2 counts.(2);
    check Alcotest.int "bucket 10" 1 counts.(10);
    check Alcotest.int "bucket array shape" Metrics.nbuckets (Array.length counts)
  | _ -> Alcotest.fail "expected a histogram");
  match Metrics.find s "h.declared" with
  | Some (Metrics.Hist { total = 0; _ }) -> ()
  | _ -> Alcotest.fail "declared histogram must appear empty"

let test_metrics_json_deterministic () =
  let build () =
    let r = Metrics.create () in
    Metrics.set_int r "b.n" 3;
    Metrics.set_float r "a.f" 1.5;
    Metrics.observe r "c.h" 9;
    Metrics.snapshot_to_json ~indent:2 (Metrics.snapshot r)
  in
  let j = build () in
  check Alcotest.string "byte-identical re-render" j (build ());
  Alcotest.(check bool) "float rendered" true (contains j "\"a.f\": 1.5");
  Alcotest.(check bool) "int rendered" true (contains j "\"b.n\": 3");
  Alcotest.(check bool) "hist rendered" true (contains j "\"c.h\": {\"buckets\":[")

(* The table-driven bucket_of must agree everywhere with the bit-length
   definition it replaced. *)
let metrics_bucket_of_prop =
  QCheck.Test.make ~name:"bucket_of matches the bit-length reference" ~count:2000
    QCheck.int (fun v ->
      let reference v =
        if v <= 0 then 0
        else begin
          let bits = ref 0 and x = ref v in
          while !x > 0 do
            incr bits;
            x := !x lsr 1
          done;
          min !bits (Metrics.nbuckets - 1)
        end
      in
      Metrics.bucket_of v = reference v)

let test_metrics_handle_equiv () =
  let obs = [ -3; 0; 1; 7; 8; 255; 256; 65535; 65536; 1 lsl 40; max_int ] in
  let by_name = Metrics.create () and by_handle = Metrics.create () in
  List.iter (Metrics.observe by_name "h") obs;
  let h = Metrics.hist by_handle "h" in
  List.iter (Metrics.hist_observe h) obs;
  check Alcotest.string "handle and name observes render identically"
    (Metrics.snapshot_to_json (Metrics.snapshot by_name))
    (Metrics.snapshot_to_json (Metrics.snapshot by_handle))

(* Pin the exported bytes for a fixed observation set, so neither the O(1)
   bucket computation nor the handle API can drift the snapshot format. *)
let test_metrics_snapshot_json_pinned () =
  let r = Metrics.create () in
  Metrics.set_float r "f" 2.5;
  Metrics.set_int r "n" 5;
  let h = Metrics.hist r "h" in
  List.iter (Metrics.hist_observe h) [ 0; 1; 2; 3; 1000 ];
  let expected =
    "{\n\
    \  \"f\": 2.5,\n\
    \  \"h\": {\"buckets\":[1,1,2,0,0,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"total\":5,\"sum\":1006},\n\
    \  \"n\": 5\n\
     }"
  in
  check Alcotest.string "pinned snapshot JSON"
    expected
    (Metrics.snapshot_to_json ~indent:2 (Metrics.snapshot r))

(* KAT-style host-spec parses.  The bracketed-IPv6 cases are regressions:
   the old last-colon split read "[::1]:9000" as host "[" / bad port and
   "::1:9000" as host "::1" port 9000 without ever saying IPv6 needs
   brackets. *)
let test_transport_hostspec_ok () =
  let ok spec host port =
    match Transport.parse_hostspec spec with
    | Ok (h, p) ->
      check Alcotest.string (spec ^ " host") host h;
      check Alcotest.int (spec ^ " port") port p
    | Error e -> Alcotest.failf "parse_hostspec %S = Error %s" spec e
  in
  ok "localhost:9000" "localhost" 9000;
  ok "10.1.2.3:80" "10.1.2.3" 80;
  ok "[::1]:9000" "::1" 9000;
  ok "[fe80::2%eth0]:7777" "fe80::2%eth0" 7777;
  ok "[2001:db8::1]:65535" "2001:db8::1" 65535

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_transport_hostspec_errors () =
  let err spec needle =
    match Transport.parse_hostspec spec with
    | Ok (h, p) -> Alcotest.failf "parse_hostspec %S = Ok (%s, %d)" spec h p
    | Error e ->
      if not (contains_sub e needle) then
        Alcotest.failf "parse_hostspec %S error %S lacks %S" spec e needle
  in
  err "::1:9000" "IPv6 requires [host]:port";
  err "a:b:c" "IPv6 requires [host]:port";
  err "host" "expected HOST:PORT";
  err ":9000" "empty host";
  err "[]:9000" "empty host";
  err "[::1]" "expected [HOST]:PORT after ']'";
  err "[::1]x:1" "expected [HOST]:PORT after ']'";
  err "[::1" "missing ']'";
  err "host:" "bad port";
  err "host:65536" "bad port";
  err "host:x" "bad port";
  err "[::1]:x" "bad port"

let test_transport_hostspecs_list () =
  (match Transport.parse_hostspecs "a:1,,[::1]:2," with
  | Ok l ->
    Alcotest.(check (list (pair string int)))
      "list" [ ("a", 1); ("::1", 2) ] l
  | Error e -> Alcotest.failf "parse_hostspecs = Error %s" e);
  match Transport.parse_hostspecs "a:1,bad" with
  | Ok _ -> Alcotest.fail "parse_hostspecs accepted a bad item"
  | Error _ -> ()

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "split" `Quick test_rng_split;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "in_range bounds" `Quick test_rng_in_range;
        Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        Alcotest.test_case "chance rate" `Quick test_rng_chance_rate;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "weighted pick bias" `Quick test_pick_weighted_bias;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "splitmix64 KAT seed 0" `Quick test_rng_kat_seed0;
        Alcotest.test_case "splitmix64 KAT seed 1234567" `Quick test_rng_kat_seed1234567;
        QCheck_alcotest.to_alcotest rng_split_independence_prop;
        QCheck_alcotest.to_alcotest rng_copy_prop;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "mean_opt" `Quick test_stats_mean_opt;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "geomean rejects non-positive" `Quick test_geomean_rejects;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "min_max" `Quick test_stats_min_max;
        Alcotest.test_case "overhead" `Quick test_stats_overhead;
        Alcotest.test_case "zero baseline rejected" `Quick test_stats_zero_baseline;
        Alcotest.test_case "ratio_pct zero denominator rejected" `Quick test_stats_ratio_pct;
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "counter moments" `Quick test_counter_moments;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "percentile rejects" `Quick test_percentile_rejects;
        Alcotest.test_case "percentile rank KATs" `Quick test_percentile_kats;
        QCheck_alcotest.to_alcotest nearest_rank_exact_prop;
        QCheck_alcotest.to_alcotest percentile_monotone_prop;
        QCheck_alcotest.to_alcotest percentile_member_prop;
        QCheck_alcotest.to_alcotest stats_geomean_prop;
        QCheck_alcotest.to_alcotest stats_geomean_scale_prop;
        QCheck_alcotest.to_alcotest stats_stddev_prop;
        QCheck_alcotest.to_alcotest stats_min_max_prop;
        QCheck_alcotest.to_alcotest stats_mean_prop;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "set ops" `Quick test_bitset_ops;
        Alcotest.test_case "copy isolation" `Quick test_bitset_copy_isolated;
        QCheck_alcotest.to_alcotest bitset_prop;
        QCheck_alcotest.to_alcotest bitset_union_prop;
        QCheck_alcotest.to_alcotest bitset_model_union_prop;
        QCheck_alcotest.to_alcotest bitset_model_inter_prop;
        QCheck_alcotest.to_alcotest bitset_model_diff_prop;
        QCheck_alcotest.to_alcotest bitset_model_subset_prop;
        QCheck_alcotest.to_alcotest bitset_algebra_prop;
      ] );
    ( "util.tab",
      [
        Alcotest.test_case "render" `Quick test_tab_render;
        Alcotest.test_case "csv" `Quick test_tab_csv;
        Alcotest.test_case "formats" `Quick test_tab_formats;
      ] );
    ( "util.metrics",
      [
        Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
        Alcotest.test_case "snapshot name order" `Quick test_metrics_snapshot_sorted;
        Alcotest.test_case "type conflicts" `Quick test_metrics_type_conflicts;
        Alcotest.test_case "non-finite rejected" `Quick test_metrics_nonfinite_rejected;
        Alcotest.test_case "hist bucket edges" `Quick test_metrics_hist_bucket_edges;
        Alcotest.test_case "hist counts" `Quick test_metrics_hist_counts;
        Alcotest.test_case "json determinism" `Quick test_metrics_json_deterministic;
        Alcotest.test_case "handle = named observe" `Quick test_metrics_handle_equiv;
        Alcotest.test_case "snapshot JSON pinned" `Quick test_metrics_snapshot_json_pinned;
        QCheck_alcotest.to_alcotest metrics_bucket_of_prop;
      ] );
    ( "util.transport",
      [
        Alcotest.test_case "hostspec KATs" `Quick test_transport_hostspec_ok;
        Alcotest.test_case "hostspec rejects" `Quick test_transport_hostspec_errors;
        Alcotest.test_case "hostspec lists" `Quick test_transport_hostspecs_list;
      ] );
  ]
